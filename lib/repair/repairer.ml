open Xpiler_ir
open Xpiler_machine
open Xpiler_ops
module Rewrite = Xpiler_passes.Rewrite
module Solver = Xpiler_smt.Solver
module Vclock = Xpiler_util.Vclock
module Trace = Xpiler_obs.Trace

type outcome =
  | Repaired of { kernel : Kernel.t; tests_run : int; site : string }
  | Gave_up of { reason : string; tests_run : int }

let dedup = Xpiler_util.Listx.dedup

(* constants visible in the program: the context Algorithm 3 harvests *)
let context_constants (k : Kernel.t) =
  Stmt.fold
    (fun acc s ->
      match s with
      | Stmt.Alloc { size; _ } -> size :: acc
      | Stmt.Memcpy { len = Expr.Int n; _ } -> n :: acc
      | Stmt.For { extent = Expr.Int n; _ } -> n :: acc
      | Stmt.Intrinsic { params = Expr.Int n :: _; _ } -> n :: acc
      | _ -> acc)
    [] k.Kernel.body
  |> dedup

(* the statement a Param/Bound site refers to, for alignment constraints;
   children are visited before their parent so match numbering agrees with
   [Rewrite.rewrite_nth] (which selects on the post-order rebuild), and the
   walk stops as soon as the nth match is found *)
let nth_matching select nth (k : Kernel.t) =
  let exception Found of Stmt.t in
  let count = ref (-1) in
  let check s =
    if select s then begin
      incr count;
      if !count = nth then raise (Found s)
    end
  in
  let rec go_block b = List.iter go_stmt b
  and go_stmt s =
    (match s with
    | Stmt.For r -> go_block r.body
    | Stmt.If r ->
      go_block r.then_;
      go_block r.else_
    | _ -> ());
    check s
  in
  try
    go_block k.Kernel.body;
    None
  with Found s -> Some s

let candidate_values ~platform (k : Kernel.t) (site : Localize.site) =
  match site with
  | Localize.Index_site _ -> [ -2; -1; 1; 2 ]  (* deltas on the index constant *)
  | Localize.Bound_site { current; _ } ->
    let ctx = context_constants k in
    let raw =
      [ current - 1; current + 1; current - 2; current + 2; current / 2; current * 2 ]
      @ List.filter (fun c -> abs (c - current) <= 8 && c <> current) ctx
    in
    let problem : Solver.problem =
      { vars = [ ("?b", Solver.Enum (dedup raw)) ];
        constraints = [ Expr.Binop (Expr.Gt, Expr.Var "?b", Expr.Int 0) ]
      }
    in
    Solver.solve_all problem |> List.filter_map (List.assoc_opt "?b")
  | Localize.Param_site { nth; current } ->
    let stmt = nth_matching Localize.is_param_site nth k in
    let align_c =
      match stmt with
      | Some (Stmt.Intrinsic i) when Intrin.is_vector i.op && platform.Platform.vector_align > 1
        ->
        [ Expr.Binop
            ( Expr.Eq,
              Expr.Binop (Expr.Mod, Expr.Var "?p", Expr.Int platform.Platform.vector_align),
              Expr.Int 0 )
        ]
      | Some (Stmt.Intrinsic { op = Intrin.Dp4a; _ }) ->
        [ Expr.Binop (Expr.Eq, Expr.Binop (Expr.Mod, Expr.Var "?p", Expr.Int 4), Expr.Int 0) ]
      | _ -> []
    in
    let ctx = context_constants k in
    let raw =
      ctx
      @ [ current / 2; current * 2; current - 1; current + 1; current - 64; current + 64 ]
    in
    let problem : Solver.problem =
      { vars = [ ("?p", Solver.Enum (dedup (List.filter (fun v -> v > 0 && v <> current) raw))) ];
        constraints = Expr.Binop (Expr.Gt, Expr.Var "?p", Expr.Int 0) :: align_c
      }
    in
    Solver.solve_all ~limit:24 problem |> List.filter_map (List.assoc_opt "?p")

let apply_candidate (k : Kernel.t) (site : Localize.site) value =
  match site with
  | Localize.Param_site { nth; _ } ->
    Kernel.map_body
      (Rewrite.rewrite_nth nth Localize.is_param_site (fun s ->
           match s with
           | Stmt.Intrinsic ({ params = Expr.Int _ :: rest; _ } as i) ->
             Stmt.Intrinsic { i with params = Expr.Int value :: rest }
           | Stmt.Memcpy r -> Stmt.Memcpy { r with len = Expr.Int value }
           | s -> s))
      k
  | Localize.Bound_site { nth; _ } ->
    Kernel.map_body
      (Rewrite.rewrite_nth nth Localize.is_bound_site (fun s ->
           match s with
           | Stmt.For r -> Stmt.For { r with extent = Expr.Int value }
           | s -> s))
      k
  | Localize.Index_site { nth; _ } ->
    Kernel.map_body
      (Rewrite.rewrite_nth nth Localize.is_index_site (fun s ->
           match s with
           | Stmt.Store r ->
             Stmt.Store
               { r with
                 index = Linear.normalize (Expr.Binop (Expr.Add, r.index, Expr.Int value))
               }
           | s -> s))
      k

let charge clock stage s = match clock with Some c -> Vclock.charge c stage s | None -> ()

(* how wrong is a kernel? used to hill-climb when several faults coexist *)
let mismatch_score ~op ~shape kernel =
  let rng = Xpiler_util.Rng.create 20250706 in
  let args, expected = Unit_test.reference_outputs rng op shape in
  match Interp.run kernel args with
  | exception Interp.Runtime_error _ -> max_int
  | _ ->
    List.fold_left
      (fun acc (name, e) ->
        match List.assoc_opt name args with
        | Some (Interp.Buf t) -> acc + List.length (Tensor.mismatched_indices t e)
        | _ -> acc + Tensor.length e)
      0 expected

let repair ?(max_tests = 200) ?(rounds = 2) ?(static = []) ?clock ~platform ~op ~shape kernel =
  Trace.span ~cat:"phase" "repair" @@ fun () ->
  let total_rounds = rounds in
  let tests = ref 0 in
  let unit_ok k =
    incr tests;
    charge clock Vclock.Unit_test 45.0;
    Unit_test.check ~trials:1 op shape k = Unit_test.Pass
  in
  let fully_ok k =
    incr tests;
    charge clock Vclock.Unit_test 90.0;
    Unit_test.check ~trials:2 op shape k = Unit_test.Pass
  in
  (* candidates must stay structurally well-formed; full platform checking
     happens on the final program (intermediate pipeline states legitimately
     mix source and target features) *)
  let compile_ok k = match Validate.check k with Ok () -> true | Error _ -> false in
  let rec round n k last_reason =
    if n <= 0 then Gave_up { reason = last_reason; tests_run = !tests }
    else begin
      Trace.count "repair.rounds";
      Trace.count "repair.localizations";
      charge clock Vclock.Bug_localization 240.0;
      (* fresh localization inputs each round: a fault masked on one input
         draw shows up on another *)
      let report = Localize.localize ~seed:(20250706 + ((total_rounds - n) * 7717)) ~op ~shape k in
      if report.Localize.failing_buffers = [] && report.Localize.runtime_error = None then
        if fully_ok k then Repaired { kernel = k; tests_run = !tests; site = "none" }
        else round (n - 1) k "divergence not reproduced on localization inputs"
      else if report.Localize.sites = [] then
        Gave_up
          { reason =
              (if report.Localize.unrepairable <> [] then
                 "complex control flow: " ^ String.concat "; " report.Localize.unrepairable
               else "no repair sites in the failing cone");
            tests_run = !tests
          }
      else begin
        let base_score = mismatch_score ~op ~shape k in
        let best_partial = ref None in
        let try_site found site =
          match found with
          | Some _ -> found
          | None ->
            charge clock Vclock.Smt_solving 90.0;
            let values = candidate_values ~platform k site in
            List.fold_left
              (fun found value ->
                match found with
                | Some _ -> found
                | None ->
                  if !tests >= max_tests then None
                  else begin
                    Trace.count "repair.candidates";
                    let candidate = apply_candidate k site value in
                    if not (compile_ok candidate) then None
                    else if unit_ok candidate then Some (candidate, site)
                    else begin
                      (* several faults may coexist: remember the candidate
                         that brings the output closest to the reference *)
                      let score = mismatch_score ~op ~shape candidate in
                      (match !best_partial with
                      | Some (s, _) when s <= score -> ()
                      | _ -> if score < base_score then best_partial := Some (score, candidate));
                      None
                    end
                  end)
              None values
        in
        match List.fold_left try_site None report.Localize.sites with
        | Some (fixed, site) ->
          if fully_ok fixed then
            Repaired
              { kernel = fixed; tests_run = !tests; site = Localize.site_to_string site }
          else round (n - 1) fixed "single-trial fix did not generalize"
        | None ->
          if !tests >= max_tests then
            Gave_up { reason = "test budget exhausted"; tests_run = !tests }
          else begin
            match !best_partial with
            | Some (_, improved) -> round (n - 1) improved "partial fix did not converge"
            | None -> Gave_up { reason = "no single-constant repair found"; tests_run = !tests }
          end
      end
    end
  in
  (* static fast path: analyzer findings already name the suspect sites, so
     skip the probe-execution binary search entirely (reading a report is
     ~30 modelled seconds against 240 for a localization round). Dynamic
     rounds below remain the untouched fallback. *)
  let static_attempt () =
    let report = Localize.of_findings static in
    if report.Localize.sites = [] then None
    else begin
      Trace.count "repair.static_localizations";
      charge clock Vclock.Bug_localization 30.0;
      let try_site found site =
        match found with
        | Some _ -> found
        | None ->
          charge clock Vclock.Smt_solving 90.0;
          let values = candidate_values ~platform kernel site in
          List.fold_left
            (fun found value ->
              match found with
              | Some _ -> found
              | None ->
                if !tests >= max_tests then None
                else begin
                  Trace.count "repair.candidates";
                  let candidate = apply_candidate kernel site value in
                  if compile_ok candidate && unit_ok candidate then Some (candidate, site)
                  else None
                end)
            None values
      in
      match List.fold_left try_site None report.Localize.sites with
      | Some (fixed, site) when fully_ok fixed ->
        Some (Repaired { kernel = fixed; tests_run = !tests; site = Localize.site_to_string site })
      | _ -> None
    end
  in
  let outcome =
    match if static = [] then None else static_attempt () with
    | Some outcome ->
      Trace.count "repair.static_fastpath";
      outcome
    | None -> round rounds kernel "no rounds"
  in
  (match outcome with
  | Repaired { site; tests_run; _ } ->
    Trace.instant ~attrs:[ ("site", site) ] "repair.repaired";
    Trace.observe "repair.tests_run" (float_of_int tests_run)
  | Gave_up { reason; tests_run } ->
    Trace.instant ~attrs:[ ("reason", reason) ] "repair.gave_up";
    Trace.observe "repair.tests_run" (float_of_int tests_run));
  outcome
