open Xpiler_ir
open Xpiler_machine

(** Unit-test oracle: run a candidate kernel against the operator's canonical
    sequential reference on random inputs (the paper's *computation accuracy*
    check). *)

type verdict = Pass | Fail of string

val make_args :
  Xpiler_util.Rng.t -> Opdef.t -> Opdef.shape -> (string * Interp.arg) list
(** Random inputs, zero-filled outputs, ordered as the kernel's parameters. *)

val reference_outputs :
  Xpiler_util.Rng.t -> Opdef.t -> Opdef.shape -> (string * Interp.arg) list * (string * Tensor.t) list
(** Inputs plus the outputs the serial reference produces on them. *)

val reference_outputs_seeded :
  seed:int -> Opdef.t -> Opdef.shape -> (string * Interp.arg) list * (string * Tensor.t) list
(** Like {!reference_outputs} with [Rng.create seed], but the serial
    reference run is cached per (op, shape, seed) — the checker replays the
    same oracle for every candidate kernel. Returned buffers are private
    copies; mutating them never corrupts the cache. A hit requires the same
    [Opdef.t] value (physical identity), so regenerated fuzz ops that reuse
    a name cannot collide. *)

val check_scored : ?seed:int -> Opdef.t -> Opdef.shape -> Kernel.t -> verdict * int
(** One interpreter run yielding both the trial-0 verdict (identical to
    [check ~trials:1 ~seed]) and the repair mismatch score — the number of
    expected-output elements the candidate gets wrong, [max_int] on a
    runtime error. The repairer's candidate path uses this to avoid
    executing a failing candidate twice (once to test, once to score). *)

val check : ?trials:int -> ?seed:int -> Opdef.t -> Opdef.shape -> Kernel.t -> verdict
(** Execute the candidate on [trials] fresh random input sets (default 2) and
    compare every output buffer to the reference. Runtime errors (out of
    bounds, unbound names, fuel) are failures. *)
