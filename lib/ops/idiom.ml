open Xpiler_ir
open Xpiler_machine
open Xpiler_passes

(* largest divisor of [n] that is <= [cap] *)
let largest_divisor_leq n cap =
  let rec go best d =
    if d > n || d > cap then best else go (if n mod d = 0 then d else best) (d + 1)
  in
  go 1 1

let apply_all platform specs k =
  List.fold_left
    (fun acc spec -> Result.bind acc (Pass.apply ~platform spec))
    (Ok k) specs

(* structure of the kernel's top-level loop nest *)
let rec perfect_chain body =
  match body with
  | [ Stmt.For r ] when r.kind = Stmt.Serial -> (
    match Rewrite.const_extent r.extent with
    | Ok n -> (r.var, n) :: perfect_chain r.body
    | Error _ -> [])
  | _ -> []

(* first top-level loop, skipping allocations and annotations: (var, extent) *)
let outer_loop (k : Kernel.t) =
  let rec first = function
    | Stmt.Alloc _ :: rest | Stmt.Annot _ :: rest -> first rest
    | Stmt.For r :: _ -> Some (r.var, r.extent)
    | _ -> None
  in
  first k.Kernel.body

let is_elementwise (k : Kernel.t) =
  match k.Kernel.body with
  | [ Stmt.For { body = [ Stmt.Store _ ]; extent; _ } ] -> (
    match Rewrite.const_extent extent with Ok n -> Some n | Error _ -> None)
  | _ -> None

(* ---- SIMT idiom (CUDA / HIP) ------------------------------------------------ *)

(* tensor-core matmul: stage operands in matrix fragments and issue mma *)
let simt_matmul_specs shape =
  let b = match List.assoc_opt "b" shape with Some b -> b | None -> 1 in
  let m = Opdef.dim shape "m" and n = Opdef.dim shape "n" and k = Opdef.dim shape "k" in
  [ Pass.Cache
      { buf = "A"; scope = Scope.Fragment; direction = Memory_pass.Read; under = None;
        base = Expr.Int 0; size = b * m * k };
    Pass.Cache
      { buf = "B"; scope = Scope.Fragment; direction = Memory_pass.Read; under = None;
        base = Expr.Int 0; size = b * k * n };
    Pass.Cache
      { buf = "C"; scope = Scope.Fragment; direction = Memory_pass.Readwrite; under = None;
        base = Expr.Int 0; size = b * m * n };
    Pass.Tensorize ]

let simt_specs (k : Kernel.t) =
  match is_elementwise k with
  | Some n ->
    let threads = largest_divisor_leq n 256 in
    let var =
      match k.Kernel.body with [ Stmt.For r ] -> r.var | _ -> assert false
    in
    if threads > 1 && n / threads > 1 then
      [ Pass.Loop_split { var; factor = threads };
        Pass.Loop_bind { var = var ^ "_0"; axis = Axis.Block_x };
        Pass.Loop_bind { var = var ^ "_1"; axis = Axis.Thread_x } ]
    else [ Pass.Loop_bind { var; axis = Axis.Block_x } ]
  | None -> (
    match perfect_chain k.Kernel.body with
    | (outer, _) :: (inner, n2) :: _ when n2 <= 1024 ->
      [ Pass.Loop_bind { var = outer; axis = Axis.Block_x };
        Pass.Loop_bind { var = inner; axis = Axis.Thread_x } ]
    | (outer, _) :: _ -> [ Pass.Loop_bind { var = outer; axis = Axis.Block_x } ]
    | [] -> (
      match k.Kernel.body with
      | Stmt.Alloc _ :: Stmt.For r :: _ | Stmt.For r :: _ ->
        [ Pass.Loop_bind { var = r.var; axis = Axis.Block_x } ]
      | _ -> []))

(* ---- MLU idiom (BANG) --------------------------------------------------------- *)

let buffer_names role (op : Opdef.t) shape =
  List.filter_map
    (fun (b : Opdef.buffer_spec) ->
      if b.is_output = role then Some (b.buf_name, b.size shape) else None)
    op.buffers

let bang_elementwise_specs (op : Opdef.t) shape n var =
  if n mod 64 <> 0 then []
  else begin
    let units = n / 64 in
    let tasks = largest_divisor_leq units 8 in
    let slice = n / tasks in
    let task = Expr.Var "taskId" in
    let window = Expr.Binop (Expr.Mul, task, Expr.Int slice) in
    let split_bind =
      if tasks > 1 then
        [ Pass.Loop_split { var; factor = slice };
          Pass.Loop_bind { var = var ^ "_0"; axis = Axis.Task_id } ]
      else []
    in
    let under = if tasks > 1 then Some "taskId" else None in
    let cache_in =
      List.map
        (fun (buf, _) ->
          Pass.Cache
            { buf; scope = Scope.Nram; direction = Memory_pass.Read; under;
              base = (if tasks > 1 then window else Expr.Int 0); size = slice })
        (buffer_names false op shape)
    in
    let cache_out =
      List.map
        (fun (buf, _) ->
          Pass.Cache
            { buf; scope = Scope.Nram; direction = Memory_pass.Write; under;
              base = (if tasks > 1 then window else Expr.Int 0); size = slice })
        (buffer_names true op shape)
    in
    split_bind @ cache_in @ cache_out @ [ Pass.Tensorize ]
  end

(* the loop heading a (fill +) matmul triple nest: (var, extent) *)
let find_matmul_loop (k : Kernel.t) =
  let found = ref None in
  let is_accum_store = function
    | [ Stmt.Store { buf = c; value = Expr.Binop (Expr.Add, Expr.Load (c', _), Expr.Binop (Expr.Mul, Expr.Load _, Expr.Load _)); _ } ]
      -> String.equal c c'
    | _ -> false
  in
  let is_acc_body = function
    | [ Stmt.Let _; Stmt.For _; Stmt.Store _ ] -> true
    | body -> is_accum_store body
  in
  Stmt.iter
    (fun s ->
      match s with
      | Stmt.For { var; extent = Expr.Int m; kind = Stmt.Serial;
                   body = [ Stmt.For { kind = Stmt.Serial; body = inner; _ } ]; _ }
        when !found = None
             && (is_acc_body inner
                || match inner with
                   | [ Stmt.For { body = deepest; _ } ] -> is_accum_store deepest
                   | _ -> false) ->
        found := Some (var, m)
      | _ -> ())
    k.Kernel.body;
  !found

let bang_gemm_specs (op : Opdef.t) shape (kernel : Kernel.t) =
  let n = Opdef.dim shape "n" and k = Opdef.dim shape "k" in
  ignore op;
  let var, m =
    match find_matmul_loop kernel with
    | Some r -> r
    | None -> (
      match outer_loop kernel with
      | Some (v, Expr.Int m) -> (v, m)
      | Some (v, _) -> (v, Opdef.dim shape "m")
      | None -> invalid_arg "bang_gemm_specs: no outer loop")
  in
  let tasks = largest_divisor_leq m 8 in
  let rows = m / tasks in
  let task = Expr.Var "taskId" in
  let base sz = Expr.Binop (Expr.Mul, task, Expr.Int sz) in
  if tasks > 1 then
    [ Pass.Loop_split { var; factor = rows };
      Pass.Loop_bind { var = var ^ "_0"; axis = Axis.Task_id };
      Pass.Cache
        { buf = "A"; scope = Scope.Nram; direction = Memory_pass.Read; under = Some "taskId";
          base = base (rows * k); size = rows * k };
      Pass.Cache
        { buf = "B"; scope = Scope.Wram; direction = Memory_pass.Read; under = Some "taskId";
          base = Expr.Int 0; size = k * n };
      Pass.Cache
        { buf = "C"; scope = Scope.Nram; direction = Memory_pass.Readwrite;
          under = Some "taskId"; base = base (rows * n); size = rows * n };
      Pass.Tensorize ]
  else
    [ Pass.Cache
        { buf = "A"; scope = Scope.Nram; direction = Memory_pass.Read; under = None;
          base = Expr.Int 0; size = m * k };
      Pass.Cache
        { buf = "B"; scope = Scope.Wram; direction = Memory_pass.Read; under = None;
          base = Expr.Int 0; size = k * n };
      Pass.Cache
        { buf = "C"; scope = Scope.Nram; direction = Memory_pass.Readwrite; under = None;
          base = Expr.Int 0; size = m * n };
      Pass.Tensorize ]

let bang_row_specs (op : Opdef.t) shape (kernel : Kernel.t) =
  (* softmax / layernorm / rmsnorm: one task per row, row staged in NRAM *)
  let c = Opdef.dim shape "c" in
  let task = Expr.Var "taskId" in
  let window = Expr.Binop (Expr.Mul, task, Expr.Int c) in
  let row_var = match outer_loop kernel with Some (v, _) -> v | None -> "row" in
  let rescope_tmp =
    if List.exists (fun (b, _, _, _) -> String.equal b "tmp")
         (Stmt.allocs kernel.Kernel.body)
    then [ Pass.Rescope { buf = "tmp"; scope = Scope.Nram } ]
    else []
  in
  ignore op;
  [ Pass.Loop_bind { var = row_var; axis = Axis.Task_id } ]
  @ rescope_tmp
  @ [ Pass.Cache
        { buf = "inp"; scope = Scope.Nram; direction = Memory_pass.Read; under = Some "taskId";
          base = window; size = c };
      Pass.Cache
        { buf = "out"; scope = Scope.Nram; direction = Memory_pass.Readwrite;
          under = Some "taskId"; base = window; size = c };
      Pass.Tensorize ]

(* NHWC convolution: rows split across tasks, input staged with its halo,
   weights in WRAM, and the nest replaced by the conv intrinsic *)
let bang_conv_specs (op : Opdef.t) shape (kernel : Kernel.t) =
  ignore op;
  let h = Opdef.dim shape "h" and w = Opdef.dim shape "w" in
  let ci = Opdef.dim shape "ci" and co = Opdef.dim shape "co" in
  let wi = w + 2 in
  let oh_var =
    match outer_loop kernel with Some (v, _) -> v | None -> "oh"
  in
  let tasks = largest_divisor_leq h 8 in
  let rows = h / tasks in
  let task = Expr.Var "taskId" in
  let base sz = Expr.Binop (Expr.Mul, task, Expr.Int sz) in
  let split_bind =
    if tasks > 1 then
      [ Pass.Loop_split { var = oh_var; factor = rows };
        Pass.Loop_bind { var = oh_var ^ "_0"; axis = Axis.Task_id } ]
    else []
  in
  let under = if tasks > 1 then Some "taskId" else None in
  let in_window = if tasks > 1 then base (rows * wi * ci) else Expr.Int 0 in
  let out_window = if tasks > 1 then base (rows * w * co) else Expr.Int 0 in
  split_bind
  @ [ Pass.Cache
        { buf = "inp"; scope = Scope.Nram; direction = Memory_pass.Read; under;
          base = in_window; size = (rows + 2) * wi * ci };
      Pass.Cache
        { buf = "wgt"; scope = Scope.Wram; direction = Memory_pass.Read; under;
          base = Expr.Int 0; size = co * 9 * ci };
      Pass.Cache
        { buf = "out"; scope = Scope.Nram; direction = Memory_pass.Write; under;
          base = out_window; size = rows * w * co };
      Pass.Tensorize ]

(* batched GEMM: one task per batch entry, per-batch windows staged *)
let bang_batch_gemm_specs shape (kernel : Kernel.t) =
  let b = Opdef.dim shape "b" and m = Opdef.dim shape "m" in
  let n = Opdef.dim shape "n" and k = Opdef.dim shape "k" in
  let batch_var = match outer_loop kernel with Some (v, _) -> v | None -> "bi" in
  let task = Expr.Var "taskId" in
  let base sz = Expr.Binop (Expr.Mul, task, Expr.Int sz) in
  [ Pass.Loop_bind { var = batch_var; axis = Axis.Task_id };
    Pass.Cache
      { buf = "A"; scope = Scope.Nram; direction = Memory_pass.Read; under = Some "taskId";
        base = base (m * k); size = m * k };
    Pass.Cache
      { buf = "B"; scope = Scope.Wram; direction = Memory_pass.Read; under = Some "taskId";
        base = base (k * n); size = k * n };
    Pass.Cache
      { buf = "C"; scope = Scope.Nram; direction = Memory_pass.Readwrite;
        under = Some "taskId"; base = base (m * n); size = m * n };
    Pass.Tensorize ]
  |> fun specs -> ignore b; specs

(* GEMV: rows split across tasks, the per-row dot product vectorized as
   vec_mul + reduce_sum over NRAM-staged operands *)
let bang_gemv_specs shape (kernel : Kernel.t) =
  let m = Opdef.dim shape "m" and k = Opdef.dim shape "k" in
  let var = match outer_loop kernel with Some (v, _) -> v | None -> "i" in
  let tasks = largest_divisor_leq m 8 in
  let rows = m / tasks in
  let task = Expr.Var "taskId" in
  let split_bind =
    if tasks > 1 then
      [ Pass.Loop_split { var; factor = rows };
        Pass.Loop_bind { var = var ^ "_0"; axis = Axis.Task_id } ]
    else []
  in
  let under = if tasks > 1 then Some "taskId" else None in
  split_bind
  @ [ Pass.Cache
        { buf = "A"; scope = Scope.Nram; direction = Memory_pass.Read; under;
          base = (if tasks > 1 then Expr.Binop (Expr.Mul, task, Expr.Int (rows * k)) else Expr.Int 0);
          size = rows * k };
      Pass.Cache
        { buf = "x"; scope = Scope.Nram; direction = Memory_pass.Read; under;
          base = Expr.Int 0; size = k };
      Pass.Tensorize ]

(* self attention: one task per query row; Q row, K, V and the score vector
   staged in NRAM so the QK dot products and the softmax tensorize *)
let bang_attention_specs shape (kernel : Kernel.t) =
  let s = Opdef.dim shape "s" and dm = Opdef.dim shape "d" in
  let qvar = match outer_loop kernel with Some (v, _) -> v | None -> "i" in
  let task = Expr.Var "taskId" in
  [ Pass.Loop_bind { var = qvar; axis = Axis.Task_id };
    Pass.Rescope { buf = "scores"; scope = Scope.Nram };
    Pass.Cache
      { buf = "Q"; scope = Scope.Nram; direction = Memory_pass.Read; under = Some "taskId";
        base = Expr.Binop (Expr.Mul, task, Expr.Int dm); size = dm };
    Pass.Cache
      { buf = "K"; scope = Scope.Nram; direction = Memory_pass.Read; under = Some "taskId";
        base = Expr.Int 0; size = s * dm };
    Pass.Cache
      { buf = "V"; scope = Scope.Nram; direction = Memory_pass.Read; under = Some "taskId";
        base = Expr.Int 0; size = s * dm };
    Pass.Tensorize ]

let bang_specs (op : Opdef.t) shape (k : Kernel.t) =
  match op.Opdef.name with
  | "gemm" -> bang_gemm_specs op shape k
  | "batch_gemm" -> bang_batch_gemm_specs shape k
  | "gemv" -> bang_gemv_specs shape k
  | "self_attention" -> bang_attention_specs shape k
  | "conv2d_nhwc" -> bang_conv_specs op shape k
  | "softmax" | "layernorm" | "rmsnorm" -> bang_row_specs op shape k
  | _ -> (
    match is_elementwise k with
    | Some n -> (
      match k.Kernel.body with
      | [ Stmt.For r ] -> bang_elementwise_specs op shape n r.var
      | _ -> [])
    | None -> (
      (* default: task-parallel outer loop *)
      match k.Kernel.body with
      | Stmt.Alloc _ :: Stmt.For r :: _ | Stmt.For r :: _ ->
        [ Pass.Loop_bind { var = r.var; axis = Axis.Task_id } ]
      | _ -> []))

(* ---- VNNI idiom ----------------------------------------------------------------- *)

let vnni_specs (k : Kernel.t) =
  (* vectorize with AVX-style intrinsics where a pattern matches *)
  ignore k;
  [ Pass.Tensorize ]

(* ---- driver ----------------------------------------------------------------------- *)

(* The idiom builders pattern-match a canonical (fully despecialized) serial
   kernel. Under skip-with-rollback the checkpoint handed to the planner may
   retain source-platform structure — e.g. the outer loop still bound when a
   despecialization pass was rolled back — so a builder that finds nothing to
   match degrades to the generic pipelines instead of raising. *)
let specs_or_empty f = try f () with Invalid_argument _ -> []

let candidate_pipelines pid (op : Opdef.t) shape (serial : Kernel.t) =
  match pid with
  | Platform.Cuda | Platform.Hip -> (
    match op.Opdef.name with
    | "gemm" | "batch_gemm" ->
      [ simt_matmul_specs shape; specs_or_empty (fun () -> simt_specs serial); [] ]
    | _ -> [ specs_or_empty (fun () -> simt_specs serial); [] ])
  | Platform.Bang -> (
    let preferred = specs_or_empty (fun () -> bang_specs op shape serial) in
    let bind_only =
      match serial.Kernel.body with
      | Stmt.Alloc _ :: Stmt.For r :: _ | Stmt.For r :: _ ->
        [ Pass.Loop_bind { var = r.var; axis = Axis.Task_id } ]
      | _ -> []
    in
    match preferred with [] -> [ bind_only; [] ] | p -> [ p; bind_only; [] ])
  | Platform.Vnni -> [ vnni_specs serial; [] ]

let pipelines_for pid (op : Opdef.t) shape (kernel : Kernel.t) =
  candidate_pipelines pid op shape kernel

let pipeline_cache : (string, Pass.spec list) Hashtbl.t = Hashtbl.create 64

let cache_key pid (op : Opdef.t) shape =
  Printf.sprintf "%s/%s/%s" (Platform.id_to_string pid) op.Opdef.name
    (String.concat "," (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) shape))

let golden_pipeline pid (op : Opdef.t) shape =
  let key = cache_key pid op shape in
  match Hashtbl.find_opt pipeline_cache key with
  | Some specs -> specs
  | None ->
    let platform = Platform.of_id pid in
    let serial = op.Opdef.serial shape in
    let ok k =
      match Checker.compile platform k with Ok () -> true | Error _ -> false
    in
    let chosen =
      List.find_opt
        (fun specs ->
          match apply_all platform specs serial with
          | Ok k -> ok k
          | Error _ -> false)
        (candidate_pipelines pid op shape serial)
    in
    let specs = Option.value ~default:[] chosen in
    Hashtbl.replace pipeline_cache key specs;
    specs

let source pid (op : Opdef.t) shape =
  let platform = Platform.of_id pid in
  let serial = op.Opdef.serial shape in
  match apply_all platform (golden_pipeline pid op shape) serial with
  | Ok k -> k
  | Error _ -> serial

let source_text pid op shape =
  Xpiler_lang.Codegen.emit (Xpiler_lang.Dialect.of_platform pid) (source pid op shape)
