open Xpiler_machine

type verdict = Pass | Fail of string

let make_args rng (op : Opdef.t) shape =
  List.map
    (fun (b : Opdef.buffer_spec) ->
      let size = b.size shape in
      let t =
        if b.is_output then Tensor.create ~dtype:b.dtype size
        else Tensor.random rng ~dtype:b.dtype size
      in
      (b.buf_name, Interp.Buf t))
    op.buffers

let clone args =
  List.map
    (fun (n, a) ->
      match a with Interp.Buf t -> (n, Interp.Buf (Tensor.copy t)) | s -> (n, s))
    args

let out_tensors (op : Opdef.t) args =
  List.filter_map
    (fun (b : Opdef.buffer_spec) ->
      if b.is_output then
        match List.assoc_opt b.buf_name args with
        | Some (Interp.Buf t) -> Some (b.buf_name, t)
        | _ -> None
      else None)
    op.buffers

let reference_outputs rng op shape =
  let args = make_args rng op shape in
  let ref_args = clone args in
  let _ = Interp.run (op.serial shape) ref_args in
  (args, out_tensors op ref_args)

(* Reference outputs are deterministic in (op, shape, seed), and the checker
   re-runs the same op/shape/seed for every candidate kernel — cache the
   serial reference run. Hits additionally require the *same* [Opdef.t]
   (physical identity): fuzzers build throwaway ops that could reuse a name. *)
let ref_cache :
    (string * (string * int) list * int, Opdef.t * (string * Interp.arg) list * (string * Tensor.t) list)
    Hashtbl.t =
  Hashtbl.create 64

let ref_cache_mutex = Mutex.create ()
let ref_cache_limit = 256
let clone_outs outs = List.map (fun (n, t) -> (n, Tensor.copy t)) outs

let reference_outputs_seeded ~seed (op : Opdef.t) shape =
  let key = (op.Opdef.name, shape, seed) in
  let hit =
    Mutex.protect ref_cache_mutex (fun () ->
        match Hashtbl.find_opt ref_cache key with
        | Some (op', args, outs) when op' == op -> Some (clone args, clone_outs outs)
        | _ -> None)
  in
  match hit with
  | Some r -> r
  | None ->
    let rng = Xpiler_util.Rng.create seed in
    let args, outs = reference_outputs rng op shape in
    (* the cache holds private clones; callers are free to clobber [args] *)
    Mutex.protect ref_cache_mutex (fun () ->
        if Hashtbl.length ref_cache >= ref_cache_limit then Hashtbl.reset ref_cache;
        Hashtbl.replace ref_cache key (op, clone args, clone_outs outs));
    (args, outs)

(* trial-0 verdict and repair mismatch score from one interpreter run: the
   checker's first trial and the repair hill-climb oracle draw on the same
   seeded reference inputs, so the repairer's candidate path fuses them
   instead of executing the candidate twice *)
let check_scored ?(seed = 20250706) (op : Opdef.t) shape kernel =
  let args, expected = reference_outputs_seeded ~seed op shape in
  match Interp.run kernel args with
  | exception Interp.Runtime_error m -> (Fail ("runtime error: " ^ m), max_int)
  | _ ->
    let outs = out_tensors op args in
    let bad =
      List.find_opt
        (fun (name, t) ->
          match List.assoc_opt name expected with
          | Some e -> not (Tensor.allclose ~rtol:1e-3 ~atol:1e-4 t e)
          | None -> true)
        outs
    in
    let verdict =
      match bad with
      | Some (name, t) ->
        let e = List.assoc name expected in
        Fail
          (Printf.sprintf "output %s diverges (max abs diff %.3g)" name
             (Tensor.max_abs_diff t e))
      | None -> Pass
    in
    let score =
      List.fold_left
        (fun acc (name, e) ->
          match List.assoc_opt name args with
          | Some (Interp.Buf t) -> acc + List.length (Tensor.mismatched_indices t e)
          | _ -> acc + Tensor.length e)
        0 expected
    in
    (verdict, score)

let check ?(trials = 2) ?(seed = 20250706) (op : Opdef.t) shape kernel =
  let rec trial i =
    if i >= trials then Pass
    else begin
      let args, expected = reference_outputs_seeded ~seed:(seed + (i * 7919)) op shape in
      match Interp.run kernel args with
      | exception Interp.Runtime_error m -> Fail ("runtime error: " ^ m)
      | _ -> (
        let outs = out_tensors op args in
        let bad =
          List.find_opt
            (fun (name, t) ->
              match List.assoc_opt name expected with
              | Some e -> not (Tensor.allclose ~rtol:1e-3 ~atol:1e-4 t e)
              | None -> true)
            outs
        in
        match bad with
        | Some (name, t) ->
          let e = List.assoc name expected in
          Fail
            (Printf.sprintf "output %s diverges (max abs diff %.3g)" name
               (Tensor.max_abs_diff t e))
        | None -> trial (i + 1))
    end
  in
  trial 0
