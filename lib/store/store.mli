(** Durable, shardable knowledge store.

    The three process-global learning stores — the warm-start schedule
    database ({!Xpiler_tuning.Schedule_db}), the tuner's transposition
    table ({!Xpiler_tuning.Transposition}) and the solver memo
    ({!Xpiler_smt.Memo}) — die with the process, so every run re-learns
    the same schedules. This module persists them under a directory
    (canonically [$XPILER_STORE_DIR]) as an append-only write-ahead log
    plus periodic snapshots, and replays log + snapshot back into the
    in-memory tables on the next process start.

    {b Content addressing and sharding.} Records are keyed by the same
    structural identities the in-memory tables use
    ({!Xpiler_ir.Kernel.hash}-based transposition keys,
    {!Xpiler_smt.Problem.hash}-based memo keys, schedule-DB signatures),
    and routed to one of N shard files by the {e shape-wildcard}
    {!Xpiler_tuning.Schedule_db.signature} (problems fall back to their
    structural hash) — so a worker fleet can split the keyspace along
    operator structure and every shape of one structure stays in one
    shard. N is fixed at store creation ([$XPILER_STORE_SHARDS],
    default 4) and recorded in the store's [STORE] meta file.

    {b Determinism.} Entries are persisted {e with} their effect receipts
    (transposition eval/prune counts, solver search stats), so a
    cold-process run that warm-starts from disk replays exactly the
    canonical charge/trace stream a warm in-process run emits — the
    observable-identity contract of PRs 4 and 7 extends across process
    boundaries. Replaying snapshot + log rebuilds each table bit-for-bit
    (asserted by the [@store] suite, {!fingerprint}).

    {b Crash safety.} Appends are whole flushed frames ({!Wal}), so a torn
    tail loads as a valid prefix and is truncated before the next append.
    Compaction stages every shard's new snapshot in a scratch directory
    and renames it into place (the native backend's artifact-install
    idiom); a crash anywhere leaves a consistent, at worst duplicated,
    record stream. *)

open Xpiler_tuning
module Memo = Xpiler_smt.Memo

type record =
  | Schedule of { signature : int; entry : Schedule_db.entry }
  | Transposition of Transposition.Key.t * Transposition.entry
  | Solver_memo of Memo.Key.t * Memo.entry

type t

val env_dir : unit -> string option
(** [$XPILER_STORE_DIR], if set and non-empty. *)

val default_shards : unit -> int
(** [$XPILER_STORE_SHARDS] (clamped to [1..1024]), default 4. *)

val open_store : ?shards:int -> dir:string -> unit -> (t, string) result
(** Create or open a store directory. [shards] applies only on first
    creation; an existing store's meta file wins thereafter. *)

val dir : t -> string
val shards : t -> int

val append : t -> record -> unit
(** Append one record to its shard's write-ahead log (framed, checksummed,
    flushed). Thread-safe. This is what the attached observers call; it is
    public for tests and offline tooling. *)

type counts = { schedule : int; transposition : int; solver_memo : int }

val zero_counts : counts
val total : counts -> int

type load_stats = {
  loaded : counts;
  torn_tails : int;  (** WAL tails truncated to a valid prefix *)
  corrupt_snapshots : int;  (** snapshots ignored or cut short; the log still replays *)
  dropped : int;  (** checksummed frames whose payload failed to decode *)
}

val load : ?db:Schedule_db.t -> t -> load_stats
(** Replay every shard (snapshot first, then log; last write wins) into
    the in-memory stores via their silent [restore] entry points — no
    hit/miss counts, no traces, no observer echo. [db] defaults to
    {!Schedule_db.default}. *)

val attach : ?db:Schedule_db.t -> t -> unit
(** Register the write-through observers on the three stores: from here
    on, every fresh entry they learn is appended to the WAL. At most one
    store is attached per process (a prior attachment is detached). *)

val detach : unit -> unit
(** Unregister the observers (if any) and close the appenders. *)

val active : unit -> t option
(** The currently attached store. *)

val ensure : ?db:Schedule_db.t -> dir:string -> unit -> (t, string) result
(** Idempotent open + {!load} + {!attach}: the one-call wiring used by
    [Core.Xpiler] and the CLI. Already attached to [dir] → no-op. *)

val close : t -> unit
(** Flush and close the shard appenders (they reopen lazily). *)

type compact_stats = { records_in : int; records_out : int; bytes : int }

val compact : t -> (compact_stats, string) result
(** Fold snapshot + log into a fresh snapshot per shard (last-wins by
    structural key, dropping superseded rewrites and undecodable frames)
    and empty the logs. Atomic per shard: scratch-dir staging + rename. *)

type info = {
  info_dir : string;
  info_shards : int;
  snapshot_records : counts;
  wal_records : counts;
  bytes : int;
  damaged : bool;  (** any torn tail or corrupt header seen *)
}

val scan : t -> info
(** Read-only census of the on-disk files (the [xpiler store] stats). *)

val clear_files : t -> int
(** Delete every shard file (the meta file survives); returns the number
    of files removed. *)

val fingerprint : ?db:Schedule_db.t -> unit -> string
(** Order-insensitive digest of the three in-memory stores' contents.
    Stable across construction paths that replay the same records (e.g.
    two loads of equivalent stores); the [@store] determinism tests
    compare these. *)
