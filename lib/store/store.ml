(* Durable knowledge store. See store.mli for the design contract. *)

open Xpiler_tuning
module Memo = Xpiler_smt.Memo
module Problem = Xpiler_smt.Problem
module Metrics = Xpiler_obs.Metrics
module Fsx = Xpiler_util.Fsx

(* All store meters are unstable: transposition appends happen on pool
   worker domains, so which process phase sees which count depends on the
   schedule. The deterministic artifact is the reconstructed table
   contents, not these meters. *)
let m_append_schedule =
  Metrics.counter ~stable:false ~help:"records appended to the store WAL by kind"
    ~labels:[ ("kind", "schedule") ] "xpiler_store_records_total"

let m_append_transposition =
  Metrics.counter ~stable:false ~labels:[ ("kind", "transposition") ] "xpiler_store_records_total"

let m_append_memo =
  Metrics.counter ~stable:false ~labels:[ ("kind", "solver_memo") ] "xpiler_store_records_total"

let m_loaded_schedule =
  Metrics.counter ~stable:false ~help:"records replayed from the store into memory by kind"
    ~labels:[ ("kind", "schedule") ] "xpiler_store_loaded_total"

let m_loaded_transposition =
  Metrics.counter ~stable:false ~labels:[ ("kind", "transposition") ] "xpiler_store_loaded_total"

let m_loaded_memo =
  Metrics.counter ~stable:false ~labels:[ ("kind", "solver_memo") ] "xpiler_store_loaded_total"

let m_torn =
  Metrics.counter ~stable:false ~help:"torn WAL tails truncated to a valid prefix at load"
    "xpiler_store_torn_tails_total"

let m_corrupt_snap =
  Metrics.counter ~stable:false ~help:"snapshots found corrupt at load (rebuilt from the log)"
    "xpiler_store_corrupt_snapshots_total"

let m_dropped =
  Metrics.counter ~stable:false ~help:"checksummed frames whose payload failed to decode"
    "xpiler_store_dropped_records_total"

let m_compactions =
  Metrics.counter ~stable:false ~help:"snapshot/compaction passes" "xpiler_store_compactions_total"

let m_bytes = Metrics.gauge ~stable:false ~help:"on-disk store size" "xpiler_store_bytes"

(* ---- records ------------------------------------------------------------- *)

type record =
  | Schedule of { signature : int; entry : Schedule_db.entry }
  | Transposition of Transposition.Key.t * Transposition.entry
  | Solver_memo of Memo.Key.t * Memo.entry

(* Shard key: the shape-wildcard structural signature where one exists
   (schedule entries carry it; transposition keys derive it from their
   kernel), else the problem's structural hash — so a fleet splitting the
   keyspace by shard keeps every shape of one operator structure, and its
   solver problems, groupable. *)
let shard_hash = function
  | Schedule { signature; _ } -> signature
  | Transposition (k, _) -> Schedule_db.signature k.Transposition.Key.platform k.Transposition.Key.kernel
  | Solver_memo (k, _) -> Problem.hash k.Memo.Key.problem

let kind_of = function
  | Schedule _ -> `Schedule
  | Transposition _ -> `Transposition
  | Solver_memo _ -> `Memo

(* ---- layout -------------------------------------------------------------- *)

type t = {
  dir : string;
  shards : int;
  mutex : Mutex.t;
  channels : out_channel option array;  (* lazily opened per-shard appenders *)
}

let dir t = t.dir
let shards t = t.shards
let meta_file dir = Filename.concat dir "STORE"
let wal_path t i = Filename.concat t.dir (Printf.sprintf "shard-%03d.wal" i)
let snap_path t i = Filename.concat t.dir (Printf.sprintf "shard-%03d.snap" i)
let format_version = 1

let env_dir () =
  match Sys.getenv_opt "XPILER_STORE_DIR" with Some d when d <> "" -> Some d | _ -> None

let default_shards () =
  match Sys.getenv_opt "XPILER_STORE_SHARDS" with
  | Some s -> (
    match int_of_string_opt (String.trim s) with Some n when n > 0 && n <= 1024 -> n | _ -> 4)
  | None -> 4

let write_meta ~shards path =
  let oc = open_out_bin path in
  Printf.fprintf oc "xpiler-store/%d\nshards=%d\n" format_version shards;
  close_out oc

let read_meta path =
  match Fsx.read_file path with
  | Error m -> Error m
  | Ok text -> (
    match String.split_on_char '\n' text with
    | version :: rest when version = Printf.sprintf "xpiler-store/%d" format_version -> (
      let shards =
        List.find_map
          (fun line ->
            match String.split_on_char '=' line with
            | [ "shards"; n ] -> int_of_string_opt n
            | _ -> None)
          rest
      in
      match shards with
      | Some n when n > 0 -> Ok n
      | _ -> Error (path ^ ": missing or invalid shards field"))
    | v :: _ -> Error (Printf.sprintf "%s: unsupported store format %S" path v)
    | [] -> Error (path ^ ": empty meta file"))

let open_store ?shards ~dir () =
  match Fsx.mkdir_p dir with
  | exception Unix.Unix_error (e, _, _) ->
    Error (Printf.sprintf "cannot create %s: %s" dir (Unix.error_message e))
  | () ->
    let meta = meta_file dir in
    let shard_count =
      if Sys.file_exists meta then read_meta meta
      else begin
        let n = match shards with Some n when n > 0 -> n | _ -> default_shards () in
        write_meta ~shards:n meta;
        Ok n
      end
    in
    Result.map
      (fun shards ->
        { dir; shards; mutex = Mutex.create (); channels = Array.make shards None })
      shard_count

let close_channels_locked t =
  Array.iteri
    (fun i oc ->
      match oc with
      | Some oc ->
        close_out_noerr oc;
        t.channels.(i) <- None
      | None -> ())
    t.channels

let close t = Mutex.protect t.mutex (fun () -> close_channels_locked t)

let disk_bytes t =
  let add acc path = if Sys.file_exists path then acc + (Unix.stat path).Unix.st_size else acc in
  let acc = ref 0 in
  for i = 0 to t.shards - 1 do
    acc := add (add !acc (wal_path t i)) (snap_path t i)
  done;
  !acc

(* ---- appending (the observer path) --------------------------------------- *)

let shard_of t r = (shard_hash r land max_int) mod t.shards

let append t r =
  let payload = Marshal.to_string r [] in
  let i = shard_of t r in
  Mutex.protect t.mutex (fun () ->
      let oc =
        match t.channels.(i) with
        | Some oc -> oc
        | None ->
          let oc = Wal.open_append ~magic:Wal.wal_magic (wal_path t i) in
          t.channels.(i) <- Some oc;
          oc
      in
      Wal.append oc payload);
  Metrics.inc
    (match kind_of r with
    | `Schedule -> m_append_schedule
    | `Transposition -> m_append_transposition
    | `Memo -> m_append_memo)

(* ---- loading ------------------------------------------------------------- *)

type counts = { schedule : int; transposition : int; solver_memo : int }

let zero_counts = { schedule = 0; transposition = 0; solver_memo = 0 }
let total c = c.schedule + c.transposition + c.solver_memo

type load_stats = {
  loaded : counts;
  torn_tails : int;  (** WAL tails truncated to a valid prefix *)
  corrupt_snapshots : int;  (** snapshots ignored or cut short; the log still replays *)
  dropped : int;  (** checksummed frames whose payload failed to decode *)
}

let decode payload : record option =
  match (Marshal.from_string payload 0 : record) with
  | r -> Some r
  | exception _ -> None

let load ?(db = Schedule_db.default) t =
  let loaded = ref zero_counts and torn_tails = ref 0 in
  let corrupt_snapshots = ref 0 and dropped = ref 0 in
  let apply payload =
    match decode payload with
    | None ->
      incr dropped;
      Metrics.inc m_dropped
    | Some (Schedule { signature; entry }) ->
      Schedule_db.restore db ~signature entry;
      loaded := { !loaded with schedule = !loaded.schedule + 1 };
      Metrics.inc m_loaded_schedule
    | Some (Transposition (k, e)) ->
      Transposition.restore k e;
      loaded := { !loaded with transposition = !loaded.transposition + 1 };
      Metrics.inc m_loaded_transposition
    | Some (Solver_memo (k, e)) ->
      Memo.restore k e;
      loaded := { !loaded with solver_memo = !loaded.solver_memo + 1 };
      Metrics.inc m_loaded_memo
  in
  Mutex.protect t.mutex (fun () ->
      (* reading through live appenders is safe (appends flush whole
         frames), but reload semantics are clearest from closed files *)
      close_channels_locked t;
      for i = 0 to t.shards - 1 do
        (* snapshot first, then the log: replay order is write order, so
           Hashtbl.replace in the restores gives last-wins for free *)
        (match Wal.read ~magic:Wal.snap_magic (snap_path t i) with
        | Wal.Missing -> ()
        | Wal.Bad_header ->
          incr corrupt_snapshots;
          Metrics.inc m_corrupt_snap
        | Wal.Data { payloads; torn; _ } ->
          (* a snapshot is written atomically, so a torn one is corruption,
             not a crash tail — but its valid prefix is still sound data *)
          if torn then begin
            incr corrupt_snapshots;
            Metrics.inc m_corrupt_snap
          end;
          List.iter apply payloads);
        match Wal.read ~magic:Wal.wal_magic (wal_path t i) with
        | Wal.Missing -> ()
        | Wal.Bad_header ->
          incr torn_tails;
          Metrics.inc m_torn
        | Wal.Data { payloads; torn; _ } ->
          if torn then begin
            incr torn_tails;
            Metrics.inc m_torn
          end;
          List.iter apply payloads
      done);
  Metrics.set m_bytes (float_of_int (disk_bytes t));
  { loaded = !loaded; torn_tails = !torn_tails; corrupt_snapshots = !corrupt_snapshots;
    dropped = !dropped }

(* ---- attach/detach (global observer wiring) ------------------------------ *)

let attached : (t * Schedule_db.t) option ref = ref None

let detach () =
  match !attached with
  | None -> ()
  | Some (t, db) ->
    Schedule_db.set_observer db None;
    Transposition.set_observer None;
    Memo.set_observer None;
    close t;
    attached := None

let attach ?(db = Schedule_db.default) t =
  detach ();
  Schedule_db.set_observer db
    (Some (fun signature entry -> append t (Schedule { signature; entry })));
  Transposition.set_observer (Some (fun k e -> append t (Transposition (k, e))));
  Memo.set_observer (Some (fun k e -> append t (Solver_memo (k, e))));
  attached := Some (t, db)

let active () = Option.map fst !attached

let ensure ?db ~dir () =
  match !attached with
  | Some (t, _) when t.dir = dir -> Ok t
  | _ -> (
    match open_store ~dir () with
    | Error _ as e -> e
    | Ok t ->
      ignore (load ?db t);
      attach ?db t;
      Ok t)

(* ---- compaction ---------------------------------------------------------- *)

(* last-wins dedup key: the same structural identity the in-memory tables
   use, so compaction folds every rewrite of a key into its final entry *)
module DKey = struct
  type t = KSched of int | KTrans of Transposition.Key.t | KMemo of Memo.Key.t

  let equal a b =
    match (a, b) with
    | KSched x, KSched y -> x = y
    | KTrans x, KTrans y -> Transposition.Key.equal x y
    | KMemo x, KMemo y -> Memo.Key.equal x y
    | _ -> false

  let hash = function
    | KSched s -> Hashtbl.hash s
    | KTrans k -> Transposition.Key.hash k
    | KMemo k -> Memo.Key.hash k
end

module DTbl = Hashtbl.Make (DKey)

let dkey = function
  | Schedule { signature; _ } -> DKey.KSched signature
  | Transposition (k, _) -> DKey.KTrans k
  | Solver_memo (k, _) -> DKey.KMemo k

type compact_stats = { records_in : int; records_out : int; bytes : int }

let rm_rf_flat d =
  (match Sys.readdir d with
  | names -> Array.iter (fun n -> try Sys.remove (Filename.concat d n) with Sys_error _ -> ()) names
  | exception Sys_error _ -> ());
  try Unix.rmdir d with Unix.Unix_error (_, _, _) -> ()

let compact t =
  Mutex.protect t.mutex @@ fun () ->
  close_channels_locked t;
  (* scratch-dir + rename, in the style of the native backend's artifact
     installs: every shard's new snapshot (and fresh empty log) is staged
     fully, then renamed into place — readers and a crash at any point see
     either the old pair or the new one, never a half-written file *)
  let scratch = Filename.concat t.dir (Printf.sprintf "compact.%d" (Unix.getpid ())) in
  let records_in = ref 0 and records_out = ref 0 in
  match
    Fsx.mkdir_p scratch;
    for i = 0 to t.shards - 1 do
      let payloads =
        let from_file magic path =
          match Wal.read ~magic path with
          | Wal.Missing | Wal.Bad_header -> []
          | Wal.Data { payloads; _ } -> payloads
        in
        from_file Wal.snap_magic (snap_path t i) @ from_file Wal.wal_magic (wal_path t i)
      in
      records_in := !records_in + List.length payloads;
      (* last-wins dedup, output in first-seen order (deterministic given
         the file contents); undecodable payloads are dropped here — this
         is where a store heals *)
      let latest : string DTbl.t = DTbl.create 256 in
      let order = ref [] in
      List.iter
        (fun payload ->
          match decode payload with
          | None -> ()
          | Some r ->
            let k = dkey r in
            if not (DTbl.mem latest k) then order := k :: !order;
            DTbl.replace latest k payload)
        payloads;
      let scratch_snap = Filename.concat scratch (Printf.sprintf "shard-%03d.snap" i) in
      let scratch_wal = Filename.concat scratch (Printf.sprintf "shard-%03d.wal" i) in
      let oc = open_out_bin scratch_snap in
      output_string oc Wal.snap_magic;
      List.iter
        (fun k ->
          incr records_out;
          output_string oc (Wal.frame (DTbl.find latest k)))
        (List.rev !order);
      close_out oc;
      Wal.create ~magic:Wal.wal_magic scratch_wal
    done;
    (* flip: snapshot before log per shard, so a crash in between leaves
       the old log alongside the new snapshot — replaying both is merely
       idempotent (same keys, same final entries), never lossy *)
    for i = 0 to t.shards - 1 do
      Sys.rename (Filename.concat scratch (Printf.sprintf "shard-%03d.snap" i)) (snap_path t i);
      Sys.rename (Filename.concat scratch (Printf.sprintf "shard-%03d.wal" i)) (wal_path t i)
    done
  with
  | () ->
    rm_rf_flat scratch;
    Metrics.inc m_compactions;
    let bytes = disk_bytes t in
    Metrics.set m_bytes (float_of_int bytes);
    Ok { records_in = !records_in; records_out = !records_out; bytes }
  | exception Sys_error m ->
    rm_rf_flat scratch;
    Error ("compaction failed: " ^ m)
  | exception Unix.Unix_error (e, fn, _) ->
    rm_rf_flat scratch;
    Error (Printf.sprintf "compaction failed: %s: %s" fn (Unix.error_message e))

(* ---- stats / maintenance (the [xpiler store] subcommand) ----------------- *)

type info = {
  info_dir : string;
  info_shards : int;
  snapshot_records : counts;
  wal_records : counts;
  bytes : int;
  damaged : bool;  (** any torn tail or corrupt header seen *)
}

let scan t =
  let damaged = ref false in
  let count magic path =
    match Wal.read ~magic path with
    | Wal.Missing -> zero_counts
    | Wal.Bad_header ->
      damaged := true;
      zero_counts
    | Wal.Data { payloads; torn; _ } ->
      if torn then damaged := true;
      List.fold_left
        (fun c payload ->
          match decode payload with
          | Some (Schedule _) -> { c with schedule = c.schedule + 1 }
          | Some (Transposition _) -> { c with transposition = c.transposition + 1 }
          | Some (Solver_memo _) -> { c with solver_memo = c.solver_memo + 1 }
          | None ->
            damaged := true;
            c)
        zero_counts payloads
  in
  let add a b =
    { schedule = a.schedule + b.schedule;
      transposition = a.transposition + b.transposition;
      solver_memo = a.solver_memo + b.solver_memo
    }
  in
  let snap = ref zero_counts and wal = ref zero_counts in
  for i = 0 to t.shards - 1 do
    snap := add !snap (count Wal.snap_magic (snap_path t i));
    wal := add !wal (count Wal.wal_magic (wal_path t i))
  done;
  { info_dir = t.dir; info_shards = t.shards; snapshot_records = !snap; wal_records = !wal;
    bytes = disk_bytes t; damaged = !damaged }

let clear_files t =
  Mutex.protect t.mutex @@ fun () ->
  close_channels_locked t;
  let removed = ref 0 in
  for i = 0 to t.shards - 1 do
    let snap = snap_path t i and wal = wal_path t i in
    if Sys.file_exists snap then begin
      (try Sys.remove snap with Sys_error _ -> ());
      incr removed
    end;
    if Sys.file_exists wal then begin
      (try Sys.remove wal with Sys_error _ -> ());
      incr removed
    end
  done;
  Metrics.set m_bytes 0.0;
  !removed

(* ---- fingerprinting (determinism tests) ---------------------------------- *)

(* Digest of the three in-memory stores. Only meaningful for comparing
   states produced the same way (e.g. both freshly loaded from disk):
   Marshal bytes can differ across *construction* paths for structurally
   equal values, but are stable for equal replay inputs. *)
let fingerprint ?(db = Schedule_db.default) () =
  let items = ref [] in
  Schedule_db.fold db
    (fun s e () ->
      items :=
        Printf.sprintf "S %d %s" s (Digest.to_hex (Digest.string (Marshal.to_string e [])))
        :: !items)
    ();
  Transposition.fold
    (fun k e () ->
      items :=
        Printf.sprintf "T %d %s" (Transposition.Key.hash k)
          (Digest.to_hex (Digest.string (Marshal.to_string (k, e) [])))
        :: !items)
    ();
  Memo.fold
    (fun k e () ->
      items :=
        Printf.sprintf "M %d %s" (Memo.Key.hash k)
          (Digest.to_hex (Digest.string (Marshal.to_string (k, e) [])))
        :: !items)
    ();
  Digest.to_hex (Digest.string (String.concat "\n" (List.sort compare !items)))
