(** Framed, checksummed record files — the byte-level layer shared by the
    durable store's write-ahead logs and snapshots.

    {b File format} (both file kinds, differing only in magic):
    {v
    8 bytes   magic: "XPWAL01\n" (log) or "XPSNAP1\n" (snapshot)
    repeated  frame:
      4 bytes   payload length, u32 big-endian
      4 bytes   FNV-1a/32 checksum of the payload, u32 big-endian
      N bytes   payload (opaque to this layer)
    v}

    The reader walks frames and stops at the first short or
    checksum-failing one: a torn tail (a crash mid-append) therefore loads
    as the valid prefix, never as an error, and {!open_append} truncates
    the garbage away before new frames go after it. *)

val wal_magic : string
val snap_magic : string

val checksum : string -> int
(** FNV-1a, 32-bit (exposed for corruption-injection tests). *)

val frame : string -> string
(** A payload's on-disk bytes (header + payload). *)

val append : out_channel -> string -> unit
(** Write one frame and flush. *)

type read =
  | Missing  (** no such file *)
  | Bad_header  (** unreadable, empty, or wrong magic: no valid prefix at all *)
  | Data of {
      payloads : string list;  (** the valid prefix, in write order *)
      valid_len : int;  (** byte length of header + valid frames *)
      torn : bool;  (** trailing bytes were dropped *)
    }

val read : magic:string -> string -> read

val create : magic:string -> string -> unit
(** (Re)write the file as empty: just the magic. *)

val truncate : string -> int -> unit

val open_append : magic:string -> string -> out_channel
(** Open for appending, repairing first: missing or header-corrupt files
    are recreated empty, torn tails are truncated to the valid prefix. *)
