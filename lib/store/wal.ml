(* Framed, checksummed record files — the byte-level layer under the
   durable knowledge store. See wal.mli for the format. *)

type read = Missing | Bad_header | Data of { payloads : string list; valid_len : int; torn : bool }

(* 8-byte magics so a header read is one fixed-size input *)
let wal_magic = "XPWAL01\n"
let snap_magic = "XPSNAP1\n"
let magic_len = 8
let () = assert (String.length wal_magic = magic_len && String.length snap_magic = magic_len)

(* FNV-1a, 32-bit: cheap, endian-free, and plenty to reject a torn or
   bit-flipped frame (we never unmarshal a payload that fails it) *)
let checksum s =
  let h = ref 0x811c9dc5 in
  String.iter (fun c -> h := (!h lxor Char.code c) * 0x01000193 land 0xffffffff) s;
  !h

let frame_header_len = 8 (* u32 BE length + u32 BE checksum *)

let put_u32 b n =
  Buffer.add_char b (Char.chr ((n lsr 24) land 0xff));
  Buffer.add_char b (Char.chr ((n lsr 16) land 0xff));
  Buffer.add_char b (Char.chr ((n lsr 8) land 0xff));
  Buffer.add_char b (Char.chr (n land 0xff))

let get_u32 s off =
  (Char.code s.[off] lsl 24)
  lor (Char.code s.[off + 1] lsl 16)
  lor (Char.code s.[off + 2] lsl 8)
  lor Char.code s.[off + 3]

let frame payload =
  let b = Buffer.create (String.length payload + frame_header_len) in
  put_u32 b (String.length payload);
  put_u32 b (checksum payload);
  Buffer.add_string b payload;
  Buffer.contents b

let append oc payload =
  output_string oc (frame payload);
  (* flush per record: an entry is durable (modulo OS buffers) the moment
     the in-memory store learned it *)
  flush oc

(* a frame larger than this is assumed to be garbage, not data — no single
   kernel/problem record comes anywhere near it *)
let max_frame = 64 * 1024 * 1024

let read ~magic path =
  if not (Sys.file_exists path) then Missing
  else begin
    match Xpiler_util.Fsx.read_file path with
    | Error _ -> Bad_header
    | Ok text ->
      let n = String.length text in
      if n < magic_len || String.sub text 0 magic_len <> magic then Bad_header
      else begin
        (* walk frames; stop at the first short or checksum-failing one —
           everything before it is the valid prefix *)
        let rec go off acc =
          if off + frame_header_len > n then (List.rev acc, off, off <> n)
          else begin
            let len = get_u32 text off in
            let sum = get_u32 text (off + 4) in
            if len > max_frame || off + frame_header_len + len > n then
              (List.rev acc, off, true)
            else begin
              let payload = String.sub text (off + frame_header_len) len in
              if checksum payload <> sum then (List.rev acc, off, true)
              else go (off + frame_header_len + len) (payload :: acc)
            end
          end
        in
        let payloads, valid_len, torn = go magic_len [] in
        Data { payloads; valid_len; torn }
      end
  end

let truncate path len =
  let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
  Fun.protect ~finally:(fun () -> Unix.close fd) (fun () -> Unix.ftruncate fd len)

let create ~magic path =
  let oc = open_out_bin path in
  output_string oc magic;
  close_out oc

(* Open for appending, repairing first: a torn tail is truncated back to
   the valid prefix (otherwise frames appended after the garbage would be
   unreachable), and an unreadable header means the file is rewritten
   empty. Returns the channel positioned at the end of the valid data. *)
let open_append ~magic path =
  (match read ~magic path with
  | Missing -> create ~magic path
  | Bad_header -> create ~magic path
  | Data { valid_len; torn; _ } -> if torn then truncate path valid_len);
  open_out_gen [ Open_wronly; Open_creat; Open_append; Open_binary ] 0o644 path
