type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* shortest decimal form that round-trips exactly *)
let float_repr f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else
    let s = Printf.sprintf "%.12g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let to_string v =
  let buf = Buffer.create 128 in
  let rec go = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int n -> Buffer.add_string buf (string_of_int n)
    | Float f ->
      (* JSON has no NaN/inf; the journal never produces them, but don't
         emit invalid bytes if a sink is handed one *)
      if Float.is_nan f || Float.abs f = Float.infinity then Buffer.add_string buf "null"
      else Buffer.add_string buf (float_repr f)
    | Str s -> escape_string buf s
    | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          go x)
        xs;
      Buffer.add_char buf ']'
    | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, x) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_string buf k;
          Buffer.add_char buf ':';
          go x)
        fields;
      Buffer.add_char buf '}'
  in
  go v;
  Buffer.contents buf

exception Bad of string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail fmt = Printf.ksprintf (fun m -> raise (Bad m)) fmt in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | Some c' -> fail "expected '%c' at %d, got '%c'" c !pos c'
    | None -> fail "expected '%c' at end of input" c
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word then begin
      pos := !pos + String.length word;
      v
    end
    else fail "bad literal at %d" !pos
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        let c = s.[!pos] in
        advance ();
        match c with
        | '"' -> Buffer.contents buf
        | '\\' ->
          (if !pos >= n then fail "unterminated escape";
           let e = s.[!pos] in
           advance ();
           match e with
           | '"' -> Buffer.add_char buf '"'
           | '\\' -> Buffer.add_char buf '\\'
           | '/' -> Buffer.add_char buf '/'
           | 'n' -> Buffer.add_char buf '\n'
           | 'r' -> Buffer.add_char buf '\r'
           | 't' -> Buffer.add_char buf '\t'
           | 'b' -> Buffer.add_char buf '\b'
           | 'f' -> Buffer.add_char buf '\012'
           | 'u' ->
             if !pos + 4 > n then fail "bad \\u escape";
             let hex = String.sub s !pos 4 in
             pos := !pos + 4;
             let code = int_of_string ("0x" ^ hex) in
             if code < 0x80 then Buffer.add_char buf (Char.chr code)
             else fail "non-ASCII \\u escape unsupported"
           | c -> fail "bad escape '\\%c'" c);
          go ()
        | c ->
          Buffer.add_char buf c;
          go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let text = String.sub s start (!pos - start) in
    match int_of_string_opt text with
    | Some i -> Int i
    | None -> (
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> fail "bad number %S at %d" text start)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let items = ref [ parse_value () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          items := parse_value () :: !items;
          skip_ws ()
        done;
        expect ']';
        List (List.rev !items)
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let field () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          (k, v)
        in
        let fields = ref [ field () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          fields := field () :: !fields;
          skip_ws ()
        done;
        expect '}';
        Obj (List.rev !fields)
      end
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage at %d" !pos;
    v
  with
  | v -> Ok v
  | exception Bad m -> Error m

let member k = function Obj fields -> List.assoc_opt k fields | _ -> None
let to_float = function Int n -> Some (float_of_int n) | Float f -> Some f | _ -> None
let to_int = function Int n -> Some n | _ -> None
let to_str = function Str s -> Some s | _ -> None
