(* Wall-clock + allocation profiler. See prof.mli.

   Everything here is wall-clock and Gc-derived, hence non-deterministic by
   nature; the module therefore never writes into the tracer's event stream —
   journals and golden traces stay byte-identical whether profiling is on or
   off. Results are pulled with [report] and exported separately. *)

module Vclock = Xpiler_util.Vclock

type span_agg = {
  mutable s_count : int;
  mutable s_wall : float;
  mutable s_alloc : float; (* words *)
  mutable s_majors : int;
}

type stage_agg = {
  mutable g_charges : int;
  mutable g_virtual : float;
  mutable g_wall : float;
}

let enabled = Atomic.make false
let lock = Mutex.create ()
let spans : (string, span_agg) Hashtbl.t = Hashtbl.create 16
let stages : (string, stage_agg) Hashtbl.t = Hashtbl.create 16
let t_start = ref 0.0
let t_stop = ref 0.0 (* <= t_start while running *)

(* Wall attribution for stage charges: the wall time since the previous
   charge (or since [enable]) is attributed to the stage being charged. The
   virtual clock advances only at charge points, so this is the wall-clock
   analogue of the same partition of the run. *)
let last_mark = ref 0.0

let alloc_words (st : Gc.stat) = st.minor_words +. st.major_words -. st.promoted_words

let enable () =
  Mutex.protect lock (fun () ->
      let now = Unix.gettimeofday () in
      t_start := now;
      t_stop := 0.0;
      last_mark := now);
  Atomic.set enabled true

let disable () =
  Atomic.set enabled false;
  Mutex.protect lock (fun () -> t_stop := Unix.gettimeofday ())

let is_enabled () = Atomic.get enabled

let reset () =
  Mutex.protect lock (fun () ->
      Hashtbl.reset spans;
      Hashtbl.reset stages;
      let now = Unix.gettimeofday () in
      t_start := now;
      t_stop := 0.0;
      last_mark := now)

let record_span name wall alloc majors =
  Mutex.protect lock (fun () ->
      let agg =
        match Hashtbl.find_opt spans name with
        | Some a -> a
        | None ->
          let a = { s_count = 0; s_wall = 0.0; s_alloc = 0.0; s_majors = 0 } in
          Hashtbl.replace spans name a;
          a
      in
      agg.s_count <- agg.s_count + 1;
      agg.s_wall <- agg.s_wall +. wall;
      agg.s_alloc <- agg.s_alloc +. alloc;
      agg.s_majors <- agg.s_majors + majors)

let span name f =
  if not (Atomic.get enabled) then f ()
  else begin
    let t0 = Unix.gettimeofday () in
    let g0 = Gc.quick_stat () in
    Fun.protect
      ~finally:(fun () ->
        let t1 = Unix.gettimeofday () in
        let g1 = Gc.quick_stat () in
        record_span name (t1 -. t0)
          (alloc_words g1 -. alloc_words g0)
          (g1.major_collections - g0.major_collections))
      f
  end

let stage_charge stage_name virtual_s =
  if Atomic.get enabled then
    Mutex.protect lock (fun () ->
        let now = Unix.gettimeofday () in
        let wall = Float.max 0.0 (now -. !last_mark) in
        last_mark := now;
        let agg =
          match Hashtbl.find_opt stages stage_name with
          | Some a -> a
          | None ->
            let a = { g_charges = 0; g_virtual = 0.0; g_wall = 0.0 } in
            Hashtbl.replace stages stage_name a;
            a
        in
        agg.g_charges <- agg.g_charges + 1;
        agg.g_virtual <- agg.g_virtual +. virtual_s;
        agg.g_wall <- agg.g_wall +. wall)

(* ---- reports ------------------------------------------------------------- *)

type span_row = { span : string; count : int; wall_s : float; alloc_words : float; majors : int }
type stage_row = { stage : string; charges : int; virtual_s : float; wall_s : float }
type report = { span_rows : span_row list; stage_rows : stage_row list; total_wall : float }

let stage_rank =
  let canonical = List.mapi (fun i s -> (Vclock.stage_name s, i)) Vclock.all_stages in
  fun name -> match List.assoc_opt name canonical with Some i -> i | None -> 100

let report () =
  Mutex.protect lock (fun () ->
      let span_rows =
        Hashtbl.fold
          (fun name a acc ->
            { span = name; count = a.s_count; wall_s = a.s_wall; alloc_words = a.s_alloc; majors = a.s_majors }
            :: acc)
          spans []
        |> List.sort (fun a b -> compare a.span b.span)
      in
      let stage_rows =
        Hashtbl.fold
          (fun name a acc ->
            { stage = name; charges = a.g_charges; virtual_s = a.g_virtual; wall_s = a.g_wall } :: acc)
          stages []
        |> List.sort (fun a b ->
               match compare (stage_rank a.stage) (stage_rank b.stage) with
               | 0 -> compare a.stage b.stage
               | c -> c)
      in
      let t_end = if !t_stop > !t_start then !t_stop else Unix.gettimeofday () in
      { span_rows; stage_rows; total_wall = Float.max 0.0 (t_end -. !t_start) })

let to_json r =
  Json.Obj
    [
      ("total_wall_seconds", Json.Float r.total_wall);
      ( "stages",
        Json.List
          (List.map
             (fun s ->
               Json.Obj
                 [
                   ("stage", Json.Str s.stage);
                   ("charges", Json.Int s.charges);
                   ("virtual_seconds", Json.Float s.virtual_s);
                   ("wall_seconds", Json.Float s.wall_s);
                 ])
             r.stage_rows) );
      ( "spans",
        Json.List
          (List.map
             (fun s ->
               Json.Obj
                 [
                   ("span", Json.Str s.span);
                   ("count", Json.Int s.count);
                   ("wall_seconds", Json.Float s.wall_s);
                   ("alloc_words", Json.Float s.alloc_words);
                   ("major_collections", Json.Int s.majors);
                 ])
             r.span_rows) );
    ]
