(** Bench-history regression watchdog.

    Each bench run appends its headline numbers as one JSONL line to
    [results/history.jsonl]; later runs (and [xpiler bench-diff]) compare
    the current [BENCH_*.json] against the {e median} of matching history
    entries and flag configurable-threshold regressions.

    {b Noise classes.} Deterministic headline numbers (tuning eval
    reductions, resilience broken-kernel counts) are [Exact] and gated
    tightly; wall-clock-derived throughputs are [Wall] and get wide
    thresholds. The bench smoke gates self-check [Exact] metrics only —
    wall-clock numbers on shared CI would flake — while the [bench-diff]
    CLI checks everything. Smoke and full runs never compare against each
    other (entries match on [bench] {e and} [smoke]). *)

type entry = {
  bench : string;  (** ["eval"] | ["tuning"] | ["resilience"] | ["repair"] *)
  smoke : bool;
  time : float option;  (** unix seconds; omitted from comparisons *)
  metrics : (string * float) list;  (** sorted by name *)
}

val entry_to_json : entry -> Json.t
val entry_of_json : Json.t -> (entry, string) result

val default_path : string
(** ["results/history.jsonl"], relative to the bench working directory. *)

val append : ?path:string -> entry -> unit
(** Appends one line (creating the parent directory and file as needed). A
    whole entry is a single write, so concurrent bench rules interleave at
    line granularity. *)

val load : ?path:string -> unit -> (entry list, string) result
(** Missing file is [Ok \[\]]; a malformed line is an error naming it. *)

val of_bench_file : bench:string -> string -> (entry, string) result
(** Extract the headline metrics from a [BENCH_<bench>.json] report:
    eval → [geomean_speedup], geomean of per-kernel
    [compiled_elems_per_sec], [parallel_speedup]; tuning → mean
    [eval_reduction], min [best_reward_ratio]; resilience →
    [total_ladder_broken], [total_seed_broken]; repair →
    [steps_reduction], [evals_reduction], [wall_speedup],
    [optimized_broken], [speculation_win_rate]. *)

(** {2 Regression specs} *)

type direction = Higher | Lower
type noise = Exact | Wall

type spec = {
  metric : string;
  direction : direction;  (** which way is better *)
  noise : noise;
  rel_threshold : float;  (** relative drop beyond which we fail *)
  abs_slack : float;  (** absolute change ignored regardless of ratio *)
  gated : bool;  (** recorded-only metrics never fail the diff *)
}

val specs : string -> spec list
(** Per bench name; unknown benches have no specs. *)

type verdict = {
  metric : string;
  current : float;
  baseline : float option;  (** median of matching history entries *)
  n_history : int;
  regressed : bool;
  detail : string;  (** human-readable explanation *)
}

val diff : ?threshold_scale:float -> ?exact_only:bool -> history:entry list -> entry -> verdict list
(** One verdict per spec'd metric present in [entry]. [threshold_scale]
    multiplies both the relative threshold and the absolute slack
    (CLI [--threshold]); [exact_only] (default false) skips [Wall]-noise
    metrics. No matching history → baseline [None], never regressed.

    {b Zero baselines.} When the history median is exactly [0.0] a relative
    drop is undefined; any worsening move is treated as an unbounded
    relative change, so it regresses iff the absolute drop exceeds
    [abs_slack] (scaled). Improvements and no-changes never regress. *)

val regressions : verdict list -> verdict list

val record : ?path:string -> ?exact_only:bool -> entry -> (verdict list, string) result
(** Diff the entry against the existing history, {e then} append it, and
    return the regressions (with [exact_only] defaulting to [true] — this
    is the self-check the bench smoke gates call before exiting). A
    corrupt/unreadable history file is an [Error] (nothing is appended):
    treating it as empty history would silently disarm the watchdog while
    growing the broken file. *)
