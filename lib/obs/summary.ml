module Vclock = Xpiler_util.Vclock

type hist = { n : int; min : float; max : float; mean : float; total : float; samples : float array }

let empty_hist = { n = 0; min = 0.0; max = 0.0; mean = 0.0; total = 0.0; samples = [||] }

let quantile h q =
  (* Defined on every histogram: empty -> 0.0, single sample -> that sample.
     Nearest-rank on the sorted sample array, with q clamped to [0, 1]. *)
  if h.n = 0 || Array.length h.samples = 0 then 0.0
  else begin
    let samples = h.samples in
    let n = Array.length samples in
    if q <= 0.0 then samples.(0)
    else if q >= 1.0 then samples.(n - 1)
    else begin
      let rank = int_of_float (ceil (q *. float_of_int n)) in
      let rank = max 1 (min n rank) in
      samples.(rank - 1)
    end
  end

type t = {
  total_seconds : float;
  stages : (string * float) list;
  spans : (string * int * float) list;
  counters : (string * int) list;
  histograms : (string * hist) list;
  events : int;
}

let canonical_stage_index name =
  let rec go i = function
    | [] -> max_int
    | s :: rest -> if Vclock.stage_name s = name then i else go (i + 1) rest
  in
  go 0 Vclock.all_stages

let of_events events =
  let stage_totals : (string, float) Hashtbl.t = Hashtbl.create 8 in
  let span_agg : (string, int * float) Hashtbl.t = Hashtbl.create 16 in
  let span_order = ref [] in
  let counters : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let hists : (string, hist) Hashtbl.t = Hashtbl.create 16 in
  let hist_samples : (string, float list) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun e ->
      match e with
      | Event.Span { name; cat = "stage"; dur; _ } ->
        Hashtbl.replace stage_totals name
          (dur +. Option.value ~default:0.0 (Hashtbl.find_opt stage_totals name))
      | Event.Span { name; dur; _ } ->
        (match Hashtbl.find_opt span_agg name with
        | None ->
          span_order := name :: !span_order;
          Hashtbl.replace span_agg name (1, dur)
        | Some (n, d) -> Hashtbl.replace span_agg name (n + 1, d +. dur))
      | Event.Count { name; n; _ } ->
        Hashtbl.replace counters name (n + Option.value ~default:0 (Hashtbl.find_opt counters name))
      | Event.Observe { name; v; _ } ->
        let h =
          match Hashtbl.find_opt hists name with
          | None -> { n = 1; min = v; max = v; mean = v; total = v; samples = [||] }
          | Some h ->
            let n = h.n + 1 and total = h.total +. v in
            { n; min = Float.min h.min v; max = Float.max h.max v;
              mean = total /. float_of_int n; total; samples = [||] }
        in
        Hashtbl.replace hists name h;
        Hashtbl.replace hist_samples name
          (v :: Option.value ~default:[] (Hashtbl.find_opt hist_samples name))
      | Event.Instant _ -> ())
    events;
  let stages =
    Hashtbl.fold (fun name v acc -> if v > 0.0 then (name, v) :: acc else acc) stage_totals []
    |> List.sort (fun (a, _) (b, _) ->
           compare (canonical_stage_index a, a) (canonical_stage_index b, b))
  in
  let spans =
    List.rev_map
      (fun name ->
        let n, d = Hashtbl.find span_agg name in
        (name, n, d))
      !span_order
  in
  let sorted_bindings tbl = Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] |> List.sort compare in
  let histograms =
    sorted_bindings hists
    |> List.map (fun (name, h) ->
           let samples =
             Array.of_list (Option.value ~default:[] (Hashtbl.find_opt hist_samples name))
           in
           Array.sort compare samples;
           (name, { h with samples }))
  in
  (* summing the per-stage totals in canonical order reproduces exactly the
     float additions [Vclock.elapsed] performs, so the grand total matches
     the clock bit-for-bit, not just approximately *)
  let total = List.fold_left (fun acc (_, s) -> acc +. s) 0.0 stages in
  { total_seconds = total;
    stages;
    spans;
    counters = sorted_bindings counters;
    histograms;
    events = List.length events
  }

let stage_total t name =
  Option.value ~default:0.0 (List.assoc_opt name t.stages)
