(** Hierarchical spans, counters and histograms over the virtual clock.

    A tracer owns a timeline whose "now" advances only through
    [stage_charge] — wired to [Vclock.set_observer] by [Core.Xpiler] — so
    every timestamp is deterministic and span durations per stage sum to
    exactly the same totals as [Vclock.breakdown] (single source of timing
    truth). Spans nest through an explicit stack; each [Vclock] charge is
    emitted as its own leaf span with category ["stage"].

    Levels gate event volume: [Stages] records spans and stage charges
    only; [Detail] additionally records counters, histogram samples and
    instants. [Off] means "do not trace" and is never given a tracer. *)

type level = Off | Stages | Detail

val level_to_string : level -> string
val level_of_string : string -> level option

type t

val create : ?level:level -> unit -> t
(** Default level: [Detail]. *)

val level : t -> level

val now : t -> float
(** Current virtual time in seconds (sum of all stage charges so far). *)

val stage_charge : t -> string -> float -> unit
(** [stage_charge t stage seconds] emits a ["stage"]-category span of
    [seconds] at the current time and advances the clock past it. This is
    the only operation that moves time. *)

type span

val span_begin : t -> ?cat:string -> ?attrs:Event.attrs -> string -> span
val span_end : t -> span -> unit
(** Ends the given span. Any spans opened after it that are still open are
    ended first (truncated at the current time), so an exception cannot
    leave the stack misaligned. *)

val with_span : t -> ?cat:string -> ?attrs:Event.attrs -> string -> (unit -> 'a) -> 'a
(** Exception-safe [span_begin]/[span_end] bracket. *)

val count : t -> ?n:int -> string -> unit
(** Counter increment ([Detail] level only; no-op otherwise). *)

val observe : t -> string -> float -> unit
(** Histogram sample ([Detail] level only). *)

val instant : t -> ?attrs:Event.attrs -> string -> unit
(** Point event ([Detail] level only). *)

val events : t -> Event.t list
(** All events recorded so far, in emission order (a span is emitted when
    it closes, so children precede their parent). *)

val counter_total : t -> string -> int
(** Sum of all [Count] events with this name (test/inspection helper). *)

val depth : t -> int
(** Number of currently open spans. *)
