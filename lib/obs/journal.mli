(** JSONL event journal: one JSON event per line.

    The journal is the on-disk sink: [xpiler translate --trace FILE]
    writes one, the bench harness appends one per experiment under
    [results/], and [xpiler trace FILE] replays one into the summary and
    Chrome renderers. Encoding is deterministic, so two runs with the same
    seed produce byte-identical journals. *)

val encode : Event.t list -> string
(** One event per line, each terminated by ['\n']. *)

val decode : string -> (Event.t list, string) result
(** Inverse of [encode]; blank lines are skipped, the first malformed line
    aborts with its line number. *)

val write_file : string -> Event.t list -> unit
val append_file : string -> Event.t list -> unit
val read_file : string -> (Event.t list, string) result

(** {2 Buffered sink}

    Incremental journaling (the bench harness appends one batch per
    experiment) previously re-opened the file on every [append_file] call;
    a sink keeps one buffered channel open instead. [write_file] /
    [append_file] remain as one-shot wrappers. *)

type sink

val open_sink : ?append:bool -> string -> sink
(** Opens (truncating unless [~append:true]) for writing. *)

val emit : sink -> Event.t list -> unit
(** Appends the encoded events to the sink's buffer; raises
    [Invalid_argument] on a closed sink. *)

val close : sink -> unit
(** Flushes and closes; idempotent. *)
