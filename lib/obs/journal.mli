(** JSONL event journal: one JSON event per line.

    The journal is the on-disk sink: [xpiler translate --trace FILE]
    writes one, the bench harness appends one per experiment under
    [results/], and [xpiler trace FILE] replays one into the summary and
    Chrome renderers. Encoding is deterministic, so two runs with the same
    seed produce byte-identical journals. *)

val encode : Event.t list -> string
(** One event per line, each terminated by ['\n']. *)

val decode : string -> (Event.t list, string) result
(** Inverse of [encode]; blank lines are skipped, the first malformed line
    aborts with its line number. *)

val write_file : string -> Event.t list -> unit
val append_file : string -> Event.t list -> unit
val read_file : string -> (Event.t list, string) result
