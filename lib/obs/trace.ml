(* Domain-local so pooled worker domains never observe (or race on) the
   master's tracer: a freshly spawned domain starts with no tracer. *)
let active : Tracer.t option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let install t = Domain.DLS.set active (Some t)
let uninstall () = Domain.DLS.set active None
let current () = Domain.DLS.get active
let enabled () = Option.is_some (Domain.DLS.get active)

let without f =
  match Domain.DLS.get active with
  | None -> f ()
  | Some t ->
    Domain.DLS.set active None;
    Fun.protect ~finally:(fun () -> Domain.DLS.set active (Some t)) f

(* When the profiler is on, the same span marks feed it — but through its own
   wall-clock stream, never through the tracer's deterministic one. *)
let span ?cat ?attrs name f =
  let f = if Prof.is_enabled () then fun () -> Prof.span name f else f in
  match Domain.DLS.get active with
  | None -> f ()
  | Some t -> Tracer.with_span t ?cat ?attrs name f

let count ?n name =
  match Domain.DLS.get active with None -> () | Some t -> Tracer.count t ?n name

let observe name v =
  match Domain.DLS.get active with None -> () | Some t -> Tracer.observe t name v

let instant ?attrs name =
  match Domain.DLS.get active with None -> () | Some t -> Tracer.instant t ?attrs name
