let active : Tracer.t option ref = ref None

let install t = active := Some t
let uninstall () = active := None
let current () = !active
let enabled () = Option.is_some !active

let span ?cat ?attrs name f =
  match !active with None -> f () | Some t -> Tracer.with_span t ?cat ?attrs name f

let count ?n name = match !active with None -> () | Some t -> Tracer.count t ?n name
let observe name v = match !active with None -> () | Some t -> Tracer.observe t name v
let instant ?attrs name = match !active with None -> () | Some t -> Tracer.instant t ?attrs name
