let us seconds = Json.Int (int_of_float (Float.round (seconds *. 1e6)))

let base ~ph ~name fields =
  Json.Obj
    ([ ("name", Json.Str name); ("ph", Json.Str ph); ("pid", Json.Int 1); ("tid", Json.Int 1) ]
    @ fields)

let args_of_attrs attrs =
  if attrs = [] then [] else [ ("args", Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) attrs)) ]

let to_json events =
  (* counters render as cumulative tracks: fold running totals in order *)
  let totals : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let trace_events =
    List.map
      (fun e ->
        match e with
        | Event.Span { name; cat; ts; dur; attrs; _ } ->
          base ~ph:"X" ~name
            ([ ("cat", Json.Str cat); ("ts", us ts); ("dur", us dur) ] @ args_of_attrs attrs)
        | Event.Instant { name; ts; attrs } ->
          base ~ph:"i" ~name ([ ("ts", us ts); ("s", Json.Str "t") ] @ args_of_attrs attrs)
        | Event.Count { name; ts; n } ->
          let total = n + Option.value ~default:0 (Hashtbl.find_opt totals name) in
          Hashtbl.replace totals name total;
          base ~ph:"C" ~name [ ("ts", us ts); ("args", Json.Obj [ ("value", Json.Int total) ]) ]
        | Event.Observe { name; ts; v } ->
          base ~ph:"C" ~name [ ("ts", us ts); ("args", Json.Obj [ ("value", Json.Float v) ]) ])
      events
  in
  let metadata =
    base ~ph:"M" ~name:"process_name"
      [ ("args", Json.Obj [ ("name", Json.Str "xpiler") ]) ]
  in
  Json.Obj
    [ ("traceEvents", Json.List (metadata :: trace_events));
      ("displayTimeUnit", Json.Str "ms") ]

let to_string events = Json.to_string (to_json events)
