(** Process-global typed metrics registry.

    The virtual-clock tracer answers "what happened, deterministically"; this
    registry answers "how often and how expensively", accumulating labeled
    counters, gauges and bucketed histograms from anywhere in the process —
    including pool worker domains (all updates are atomic or mutex-protected).

    {b Stability classes.} Some instrumented quantities are pure functions of
    the input and configuration (escalation rung counts, SMT verdicts, pass
    tallies); others depend on the parallel schedule (transposition-table and
    intra-memo hit/miss counts race between worker domains; pool latencies
    are wall-clock). Each metric is registered [~stable:true/false], and
    {!snapshot}[ ~stable_only:true] keeps only the schedule-independent ones —
    that restricted snapshot is byte-identical across [--jobs] values, which
    the determinism tests assert. The full snapshot additionally synthesizes
    pool-usage metrics by pulling {!Pool.stats} (the pool cannot call into
    this module without a dependency cycle).

    Handles are interned per [(name, labels)]: registering the same pair
    twice returns the same handle; reusing a name with a different kind
    raises [Invalid_argument]. Register handles once at the instrumentation
    site, not per event — the hot path is then a single atomic operation. *)

type counter
type gauge
type histogram

val counter : ?stable:bool -> ?help:string -> ?labels:(string * string) list -> string -> counter
(** [stable] defaults to [true]; label lists are sorted and deduplicated by
    key at registration. *)

val gauge : ?stable:bool -> ?help:string -> ?labels:(string * string) list -> string -> gauge

val histogram :
  ?stable:bool ->
  ?help:string ->
  ?labels:(string * string) list ->
  ?bounds:float array ->
  string ->
  histogram
(** [bounds] are inclusive upper bucket bounds, strictly increasing; an
    implicit overflow bucket is appended. Defaults to a 1-2.5-5 decade ladder
    from 1 to 1000. *)

val inc : ?n:int -> counter -> unit
val set : gauge -> float -> unit
val add : gauge -> float -> unit
val observe : histogram -> float -> unit

val set_enabled : bool -> unit
(** When disabled, {!inc}/{!set}/{!add}/{!observe} are no-ops (a single
    atomic load). Registration still works. Default: enabled. *)

val is_enabled : unit -> bool

(** {2 Snapshots} *)

type hist_snapshot = {
  bounds : float array;
  counts : int array;  (** per-bucket (non-cumulative), length [bounds]+1 *)
  sum : float;
  count : int;
  hmin : float;  (** 0.0 when [count = 0] *)
  hmax : float;  (** 0.0 when [count = 0] *)
}

type value = Vcounter of int | Vgauge of float | Vhist of hist_snapshot

type sample = {
  name : string;
  labels : (string * string) list;
  help : string;
  stable : bool;
  value : value;
}

val snapshot : ?stable_only:bool -> unit -> sample list
(** Deterministically ordered (by name, then labels). With
    [~stable_only:true], drops unstable metrics {e and} the synthesized pool
    metrics, leaving exactly the schedule-independent set. *)

val reset : unit -> unit
(** Zero all values (registrations survive) and reset {!Pool} stats. *)

val merge : sample list -> sample list -> sample list
(** Fold two snapshots: counters add, gauges take the max, histograms add
    bucket-wise (bounds must match). Missing metrics pass through. *)

val hist_quantile : hist_snapshot -> float -> float
(** Nearest-rank quantile estimated from bucket counts, clamped to the
    observed [hmin, hmax]. Defined on all inputs: an empty histogram yields
    [0.0], a single-sample histogram yields that sample's bucket value
    ([hmin]); [q <= 0] yields [hmin], [q >= 1] yields [hmax]. *)

(** {2 Exports} *)

val to_openmetrics : sample list -> string
(** OpenMetrics / Prometheus text exposition: [# HELP]/[# TYPE] headers,
    cumulative [_bucket{le="..."}] series plus [_sum]/[_count] for
    histograms, terminated by [# EOF]. *)

val to_json : sample list -> Json.t
(** Deterministic JSON array of samples, embeddable as the [metrics] section
    of the self-contained report JSON. *)
