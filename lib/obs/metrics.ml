(* Process-global typed metrics registry. See metrics.mli for the contract.

   Counters are atomic ints, gauges atomic floats, histograms mutex-protected
   bucket arrays — all safe to update from pool worker domains. The registry
   itself (interning of handles) is mutex-protected; handle lookups happen at
   instrumentation-site registration, not per increment, so the hot path is a
   single atomic op. *)

module Pool = Xpiler_util.Pool

type kind = Counter | Gauge | Histogram

let kind_name = function Counter -> "counter" | Gauge -> "gauge" | Histogram -> "histogram"

type hist_state = {
  bounds : float array;
  counts : int array; (* length = Array.length bounds + 1; last is overflow *)
  mutable sum : float;
  mutable count : int;
  mutable vmin : float;
  mutable vmax : float;
  lock : Mutex.t;
}

type cell =
  | Ccell of int Atomic.t
  | Gcell of float Atomic.t
  | Hcell of hist_state

type metric = {
  m_name : string;
  m_labels : (string * string) list; (* sorted by key *)
  m_help : string;
  m_stable : bool;
  cell : cell;
}

type counter = int Atomic.t
type gauge = float Atomic.t
type histogram = hist_state

let enabled = Atomic.make true
let set_enabled b = Atomic.set enabled b
let is_enabled () = Atomic.get enabled

let registry : (string * (string * string) list, metric) Hashtbl.t = Hashtbl.create 64
let name_meta : (string, kind * string) Hashtbl.t = Hashtbl.create 64
let registry_lock = Mutex.create ()

let default_bounds = [| 1.0; 2.0; 5.0; 10.0; 25.0; 50.0; 100.0; 250.0; 500.0; 1000.0 |]

let sort_labels labels =
  List.sort_uniq (fun (a, _) (b, _) -> compare a b) labels

let register ~kind ~stable ~help ~labels name make_cell =
  let labels = sort_labels labels in
  Mutex.protect registry_lock (fun () ->
      (match Hashtbl.find_opt name_meta name with
      | Some (k, _) when k <> kind ->
        invalid_arg
          (Printf.sprintf "Metrics: %s already registered as a %s, not a %s" name (kind_name k)
             (kind_name kind))
      | Some _ -> ()
      | None -> Hashtbl.replace name_meta name (kind, help));
      match Hashtbl.find_opt registry (name, labels) with
      | Some m -> m.cell
      | None ->
        let help = match Hashtbl.find_opt name_meta name with Some (_, h) -> h | None -> help in
        let m = { m_name = name; m_labels = labels; m_help = help; m_stable = stable; cell = make_cell () } in
        Hashtbl.replace registry (name, labels) m;
        m.cell)

let counter ?(stable = true) ?(help = "") ?(labels = []) name : counter =
  match register ~kind:Counter ~stable ~help ~labels name (fun () -> Ccell (Atomic.make 0)) with
  | Ccell c -> c
  | _ -> assert false

let gauge ?(stable = true) ?(help = "") ?(labels = []) name : gauge =
  match register ~kind:Gauge ~stable ~help ~labels name (fun () -> Gcell (Atomic.make 0.0)) with
  | Gcell g -> g
  | _ -> assert false

let histogram ?(stable = true) ?(help = "") ?(labels = []) ?(bounds = default_bounds) name :
    histogram =
  if Array.length bounds = 0 then invalid_arg "Metrics.histogram: empty bounds";
  Array.iteri
    (fun i b -> if i > 0 && b <= bounds.(i - 1) then invalid_arg "Metrics.histogram: bounds not increasing")
    bounds;
  match
    register ~kind:Histogram ~stable ~help ~labels name (fun () ->
        Hcell
          {
            bounds = Array.copy bounds;
            counts = Array.make (Array.length bounds + 1) 0;
            sum = 0.0;
            count = 0;
            vmin = infinity;
            vmax = neg_infinity;
            lock = Mutex.create ();
          })
  with
  | Hcell h -> h
  | _ -> assert false

let inc ?(n = 1) (c : counter) = if Atomic.get enabled then ignore (Atomic.fetch_and_add c n)

let set (g : gauge) v = if Atomic.get enabled then Atomic.set g v

let add (g : gauge) v =
  if Atomic.get enabled then begin
    let rec loop () =
      let cur = Atomic.get g in
      if not (Atomic.compare_and_set g cur (cur +. v)) then loop ()
    in
    loop ()
  end

let observe (h : histogram) v =
  if Atomic.get enabled then
    Mutex.protect h.lock (fun () ->
        let n = Array.length h.bounds in
        let rec bucket i = if i >= n || v <= h.bounds.(i) then i else bucket (i + 1) in
        let b = bucket 0 in
        h.counts.(b) <- h.counts.(b) + 1;
        h.sum <- h.sum +. v;
        h.count <- h.count + 1;
        if v < h.vmin then h.vmin <- v;
        if v > h.vmax then h.vmax <- v)

(* ---- snapshots ---------------------------------------------------------- *)

type hist_snapshot = {
  bounds : float array;
  counts : int array;
  sum : float;
  count : int;
  hmin : float;
  hmax : float;
}

type value = Vcounter of int | Vgauge of float | Vhist of hist_snapshot

type sample = {
  name : string;
  labels : (string * string) list;
  help : string;
  stable : bool;
  value : value;
}

let snap_hist (h : hist_state) =
  Mutex.protect h.lock (fun () ->
      {
        bounds = Array.copy h.bounds;
        counts = Array.copy h.counts;
        sum = h.sum;
        count = h.count;
        hmin = (if h.count = 0 then 0.0 else h.vmin);
        hmax = (if h.count = 0 then 0.0 else h.vmax);
      })

let sample_of_metric m =
  let value =
    match m.cell with
    | Ccell c -> Vcounter (Atomic.get c)
    | Gcell g -> Vgauge (Atomic.get g)
    | Hcell h -> Vhist (snap_hist h)
  in
  { name = m.m_name; labels = m.m_labels; help = m.m_help; stable = m.m_stable; value }

(* Pool self-stats, pulled rather than pushed: xpiler_util cannot depend on
   this module. Everything wall-clock-derived is unstable by construction. *)
let pool_samples () =
  let s = Pool.stats () in
  let g name help v = { name; labels = []; help; stable = false; value = Vgauge v } in
  let c name help v = { name; labels = []; help; stable = false; value = Vcounter v } in
  let utilization =
    if s.Pool.wall_seconds > 0.0 && s.Pool.max_jobs > 0 then
      s.Pool.busy_seconds /. (s.Pool.wall_seconds *. float_of_int s.Pool.max_jobs)
    else 0.0
  in
  [
    c "xpiler_pool_maps_total" "completed Pool.map calls" s.Pool.maps;
    g "xpiler_pool_busy_seconds" "sum of per-task wall time across all domains" s.Pool.busy_seconds;
    g "xpiler_pool_wall_seconds" "sum of wall time of the Pool.map calls" s.Pool.wall_seconds;
    g "xpiler_pool_max_jobs" "largest effective job count seen" (float_of_int s.Pool.max_jobs);
    g "xpiler_pool_utilization_ratio" "busy seconds / (map wall seconds * max jobs)" utilization;
    {
      name = "xpiler_pool_task_latency_seconds";
      labels = [];
      help = "wall-clock latency of individual pool tasks";
      stable = false;
      value =
        Vhist
          {
            bounds = Array.copy Pool.latency_bounds;
            counts = Array.copy s.Pool.latency_counts;
            sum = s.Pool.busy_seconds;
            count = s.Pool.tasks;
            hmin = 0.0;
            hmax = 0.0;
          };
    };
  ]

let snapshot ?(stable_only = false) () =
  let base =
    Mutex.protect registry_lock (fun () ->
        Hashtbl.fold (fun _ m acc -> sample_of_metric m :: acc) registry [])
  in
  let all = if stable_only then base else base @ pool_samples () in
  let all = if stable_only then List.filter (fun s -> s.stable) all else all in
  List.sort (fun a b ->
      match compare a.name b.name with 0 -> compare a.labels b.labels | c -> c)
    all

let reset () =
  Mutex.protect registry_lock (fun () ->
      Hashtbl.iter
        (fun _ m ->
          match m.cell with
          | Ccell c -> Atomic.set c 0
          | Gcell g -> Atomic.set g 0.0
          | Hcell h ->
            Mutex.protect h.lock (fun () ->
                Array.fill h.counts 0 (Array.length h.counts) 0;
                h.sum <- 0.0;
                h.count <- 0;
                h.vmin <- infinity;
                h.vmax <- neg_infinity))
        registry);
  Pool.reset_stats ()

(* ---- merge --------------------------------------------------------------- *)

let merge_values a b =
  match (a, b) with
  | Vcounter x, Vcounter y -> Vcounter (x + y)
  | Vgauge x, Vgauge y -> Vgauge (Float.max x y)
  | Vhist x, Vhist y ->
    if x.bounds <> y.bounds then invalid_arg "Metrics.merge: histogram bounds differ";
    Vhist
      {
        bounds = x.bounds;
        counts = Array.init (Array.length x.counts) (fun i -> x.counts.(i) + y.counts.(i));
        sum = x.sum +. y.sum;
        count = x.count + y.count;
        hmin =
          (if x.count = 0 then y.hmin else if y.count = 0 then x.hmin else Float.min x.hmin y.hmin);
        hmax = (if x.count = 0 then y.hmax else if y.count = 0 then x.hmax else Float.max x.hmax y.hmax);
      }
  | _ -> invalid_arg "Metrics.merge: kind mismatch"

let merge a b =
  let tbl = Hashtbl.create 64 in
  let add_sample s =
    let key = (s.name, s.labels) in
    match Hashtbl.find_opt tbl key with
    | None -> Hashtbl.replace tbl key s
    | Some prev -> Hashtbl.replace tbl key { prev with value = merge_values prev.value s.value }
  in
  List.iter add_sample a;
  List.iter add_sample b;
  let all = Hashtbl.fold (fun _ s acc -> s :: acc) tbl [] in
  List.sort (fun a b ->
      match compare a.name b.name with 0 -> compare a.labels b.labels | c -> c)
    all

(* ---- quantiles ----------------------------------------------------------- *)

let hist_quantile (h : hist_snapshot) q =
  if h.count = 0 then 0.0
  else if h.count = 1 || q <= 0.0 then h.hmin
  else if q >= 1.0 then h.hmax
  else begin
    (* nearest-rank over buckets; the answer is the upper bound of the bucket
       containing the rank, clamped to the observed [hmin, hmax] range *)
    let rank = int_of_float (ceil (q *. float_of_int h.count)) in
    let rank = max 1 (min h.count rank) in
    let n = Array.length h.bounds in
    let rec find i acc =
      if i > n then h.hmax
      else
        let acc = acc + h.counts.(i) in
        if acc >= rank then if i < n then h.bounds.(i) else h.hmax
        else find (i + 1) acc
    in
    let v = find 0 0 in
    Float.min h.hmax (Float.max h.hmin v)
  end

(* ---- exports ------------------------------------------------------------- *)

let escape_label_value v =
  let buf = Buffer.create (String.length v) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

let render_labels = function
  | [] -> ""
  | labels ->
    "{"
    ^ String.concat ","
        (List.map (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape_label_value v)) labels)
    ^ "}"

let render_labels_extra labels extra =
  let all = labels @ [ extra ] in
  render_labels all

let float_str f =
  (* shortest round-trip form, matching the journal codec *)
  if Float.is_integer f && Float.abs f < 1e16 then Printf.sprintf "%.1f" f
  else
    let s = Printf.sprintf "%.17g" f in
    let shorter = Printf.sprintf "%.15g" f in
    if float_of_string shorter = f then shorter else s

let to_openmetrics samples =
  let buf = Buffer.create 1024 in
  let last_name = ref "" in
  List.iter
    (fun s ->
      if s.name <> !last_name then begin
        last_name := s.name;
        if s.help <> "" then Buffer.add_string buf (Printf.sprintf "# HELP %s %s\n" s.name s.help);
        let ty =
          match s.value with Vcounter _ -> "counter" | Vgauge _ -> "gauge" | Vhist _ -> "histogram"
        in
        Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" s.name ty)
      end;
      match s.value with
      | Vcounter n -> Buffer.add_string buf (Printf.sprintf "%s%s %d\n" s.name (render_labels s.labels) n)
      | Vgauge v ->
        Buffer.add_string buf (Printf.sprintf "%s%s %s\n" s.name (render_labels s.labels) (float_str v))
      | Vhist h ->
        let acc = ref 0 in
        Array.iteri
          (fun i c ->
            acc := !acc + c;
            let le =
              if i < Array.length h.bounds then float_str h.bounds.(i) else "+Inf"
            in
            Buffer.add_string buf
              (Printf.sprintf "%s_bucket%s %d\n" s.name (render_labels_extra s.labels ("le", le)) !acc))
          h.counts;
        Buffer.add_string buf
          (Printf.sprintf "%s_sum%s %s\n" s.name (render_labels s.labels) (float_str h.sum));
        Buffer.add_string buf
          (Printf.sprintf "%s_count%s %d\n" s.name (render_labels s.labels) h.count))
    samples;
  Buffer.add_string buf "# EOF\n";
  Buffer.contents buf

let to_json samples =
  Json.List
    (List.map
       (fun s ->
         let labels = Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) s.labels) in
         let base = [ ("name", Json.Str s.name); ("labels", labels); ("stable", Json.Bool s.stable) ] in
         let value =
           match s.value with
           | Vcounter n -> [ ("kind", Json.Str "counter"); ("value", Json.Int n) ]
           | Vgauge v -> [ ("kind", Json.Str "gauge"); ("value", Json.Float v) ]
           | Vhist h ->
             [
               ("kind", Json.Str "histogram");
               ("bounds", Json.List (Array.to_list (Array.map (fun b -> Json.Float b) h.bounds)));
               ("counts", Json.List (Array.to_list (Array.map (fun c -> Json.Int c) h.counts)));
               ("sum", Json.Float h.sum);
               ("count", Json.Int h.count);
               ("min", Json.Float h.hmin);
               ("max", Json.Float h.hmax);
             ]
         in
         Json.Obj (base @ value))
       samples)
