(** Minimal JSON support for the observability layer.

    The journal and the Chrome trace exporter need a JSON printer, and
    journal replay needs a parser; neither yojson nor any other JSON
    library is a dependency of this repo, so a small self-contained
    implementation lives here. The printer is deterministic (object fields
    are emitted in construction order, floats in a shortest-round-trip
    format), which is what makes trace journals byte-identical across runs
    with the same seed. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact, single-line rendering. Floats print via a shortest
    round-tripping decimal form, so [parse (to_string v)] reproduces [v]
    exactly. *)

val parse : string -> (t, string) result
(** Parses a single JSON value (the subset this module prints: no unicode
    escapes beyond [\uXXXX] for ASCII, no exotic number forms). Trailing
    whitespace is allowed; trailing garbage is an error. *)

val member : string -> t -> t option
(** Field lookup on [Obj]; [None] otherwise. *)

val to_float : t -> float option
(** Numeric coercion: [Int] and [Float] both succeed. *)

val to_int : t -> int option
val to_str : t -> string option
