type attrs = (string * string) list

type t =
  | Span of { name : string; cat : string; ts : float; dur : float; depth : int; attrs : attrs }
  | Instant of { name : string; ts : float; attrs : attrs }
  | Count of { name : string; ts : float; n : int }
  | Observe of { name : string; ts : float; v : float }

let name = function
  | Span { name; _ } | Instant { name; _ } | Count { name; _ } | Observe { name; _ } -> name

let ts = function
  | Span { ts; _ } | Instant { ts; _ } | Count { ts; _ } | Observe { ts; _ } -> ts

let attrs_json attrs = Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) attrs)

let with_attrs fields attrs =
  if attrs = [] then fields else fields @ [ ("attrs", attrs_json attrs) ]

let to_json = function
  | Span { name; cat; ts; dur; depth; attrs } ->
    Json.Obj
      (with_attrs
         [ ("t", Json.Str "span"); ("name", Json.Str name); ("cat", Json.Str cat);
           ("ts", Json.Float ts); ("dur", Json.Float dur); ("depth", Json.Int depth) ]
         attrs)
  | Instant { name; ts; attrs } ->
    Json.Obj
      (with_attrs
         [ ("t", Json.Str "inst"); ("name", Json.Str name); ("ts", Json.Float ts) ]
         attrs)
  | Count { name; ts; n } ->
    Json.Obj
      [ ("t", Json.Str "count"); ("name", Json.Str name); ("ts", Json.Float ts);
        ("n", Json.Int n) ]
  | Observe { name; ts; v } ->
    Json.Obj
      [ ("t", Json.Str "obs"); ("name", Json.Str name); ("ts", Json.Float ts);
        ("v", Json.Float v) ]

let ( let* ) = Result.bind

let field j k coerce what =
  match Option.bind (Json.member k j) coerce with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "event: missing or ill-typed field %S (%s)" k what)

let attrs_of_json j =
  match Json.member "attrs" j with
  | None -> Ok []
  | Some (Json.Obj fields) ->
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | (k, Json.Str v) :: rest -> go ((k, v) :: acc) rest
      | (k, _) :: _ -> Error (Printf.sprintf "event: attr %S is not a string" k)
    in
    go [] fields
  | Some _ -> Error "event: attrs is not an object"

let of_json j =
  let* tag = field j "t" Json.to_str "tag" in
  let* name = field j "name" Json.to_str tag in
  let* ts = field j "ts" Json.to_float tag in
  match tag with
  | "span" ->
    let* cat = field j "cat" Json.to_str tag in
    let* dur = field j "dur" Json.to_float tag in
    let* depth = field j "depth" Json.to_int tag in
    let* attrs = attrs_of_json j in
    Ok (Span { name; cat; ts; dur; depth; attrs })
  | "inst" ->
    let* attrs = attrs_of_json j in
    Ok (Instant { name; ts; attrs })
  | "count" ->
    let* n = field j "n" Json.to_int tag in
    Ok (Count { name; ts; n })
  | "obs" ->
    let* v = field j "v" Json.to_float tag in
    Ok (Observe { name; ts; v })
  | other -> Error (Printf.sprintf "event: unknown tag %S" other)

let encode_line e = Json.to_string (to_json e)

let decode_line line =
  let* j = Json.parse line in
  of_json j
