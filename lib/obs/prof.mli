(** Wall-clock and allocation profiler.

    The tracer's timeline is the deterministic virtual clock; this module
    measures what the same marks cost in {e real} time and allocation,
    sampling [Unix.gettimeofday] and [Gc.quick_stat] around the spans the
    {!Trace} facade already delimits, and attributing wall time to virtual
    stages at each [Vclock] charge point.

    The profiler stream is deliberately segregated from the tracer: nothing
    here ever emits a trace event or touches a journal, so golden traces stay
    byte-identical whether profiling is on or off. Results are pulled with
    {!report} and exported as a separate JSON object / report table.

    Disabled by default; [Core.Xpiler] brackets a translation with
    {!enable}/{!disable} when [Config.profile] is set. When disabled, every
    entry point is a no-op behind a single atomic load. *)

val enable : unit -> unit
(** Also resets the wall-attribution mark; aggregates from a previous
    enabled period are kept (call {!reset} for a clean slate). *)

val disable : unit -> unit
val is_enabled : unit -> bool
val reset : unit -> unit

val span : string -> (unit -> 'a) -> 'a
(** Run the thunk, aggregating wall seconds, allocated words
    (minor + major − promoted) and major collections under the span name.
    Exceptions still record the partial cost. [Trace.span] calls this
    automatically while profiling is enabled. *)

val stage_charge : string -> float -> unit
(** [stage_charge stage virtual_s]: attribute the wall time elapsed since
    the previous charge (or since {!enable}) to [stage], alongside the
    virtual seconds charged. Wired to the [Vclock] observer. *)

(** {2 Reports} *)

type span_row = { span : string; count : int; wall_s : float; alloc_words : float; majors : int }
type stage_row = { stage : string; charges : int; virtual_s : float; wall_s : float }

type report = {
  span_rows : span_row list;  (** sorted by span name *)
  stage_rows : stage_row list;  (** canonical [Vclock] stage order first *)
  total_wall : float;  (** wall seconds from {!enable} to {!disable} (or now) *)
}

val report : unit -> report
val to_json : report -> Json.t
