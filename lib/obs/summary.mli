(** In-memory aggregation of an event stream.

    This is the data behind the summary tables [xpiler trace] prints (the
    rendering itself lives in [Core.Obs_report], next to [Report]). Stage
    rows follow [Vclock]'s canonical stage order and omit zero-total
    stages, mirroring [Vclock.breakdown]; counter and histogram rows sort
    by name so output is stable. *)

type hist = {
  n : int;
  min : float;
  max : float;
  mean : float;
  total : float;
  samples : float array;  (** all observed values, sorted ascending *)
}

val empty_hist : hist

val quantile : hist -> float -> float
(** Nearest-rank quantile over [samples], defined on every histogram: an
    empty histogram yields [0.0] (no exception), a single-sample histogram
    yields that sample for any [q]; [q] is clamped to [\[0, 1\]]. *)

type t = {
  total_seconds : float;  (** sum of stage-span durations = [Vclock.elapsed] *)
  stages : (string * float) list;  (** canonical stage order, zeros omitted *)
  spans : (string * int * float) list;
      (** non-stage spans: name, count, total duration; first-seen order *)
  counters : (string * int) list;  (** sorted by name *)
  histograms : (string * hist) list;  (** sorted by name *)
  events : int;  (** total event count *)
}

val of_events : Event.t list -> t

val stage_total : t -> string -> float
(** Total for one stage name; 0 when absent. *)
