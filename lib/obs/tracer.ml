type level = Off | Stages | Detail

let level_to_string = function Off -> "off" | Stages -> "stages" | Detail -> "detail"

let level_of_string = function
  | "off" -> Some Off
  | "stages" -> Some Stages
  | "detail" -> Some Detail
  | _ -> None

type span = { id : int; sname : string; cat : string; attrs : Event.attrs; start : float; sdepth : int }

type t = {
  lvl : level;
  mutable vnow : float;
  mutable rev_events : Event.t list;
  mutable stack : span list;
  mutable next_id : int;
}

let create ?(level = Detail) () =
  { lvl = level; vnow = 0.0; rev_events = []; stack = []; next_id = 0 }

let level t = t.lvl
let now t = t.vnow
let depth t = List.length t.stack
let emit t e = t.rev_events <- e :: t.rev_events

let stage_charge t stage seconds =
  if t.lvl <> Off then begin
    emit t
      (Event.Span
         { name = stage; cat = "stage"; ts = t.vnow; dur = seconds;
           depth = List.length t.stack; attrs = [] });
    t.vnow <- t.vnow +. seconds
  end

let span_begin t ?(cat = "span") ?(attrs = []) name =
  let s =
    { id = t.next_id; sname = name; cat; attrs; start = t.vnow; sdepth = List.length t.stack }
  in
  t.next_id <- t.next_id + 1;
  if t.lvl <> Off then t.stack <- s :: t.stack;
  s

let close t s =
  emit t
    (Event.Span
       { name = s.sname; cat = s.cat; ts = s.start; dur = t.vnow -. s.start;
         depth = s.sdepth; attrs = s.attrs })

let span_end t span =
  if t.lvl <> Off then begin
    (* unwind past any spans left open below this one (exception paths) *)
    let rec unwind = function
      | [] -> []
      | s :: rest ->
        close t s;
        if s.id = span.id then rest else unwind rest
    in
    if List.exists (fun s -> s.id = span.id) t.stack then t.stack <- unwind t.stack
  end

let with_span t ?cat ?attrs name f =
  let s = span_begin t ?cat ?attrs name in
  Fun.protect ~finally:(fun () -> span_end t s) f

let count t ?(n = 1) name =
  if t.lvl = Detail then emit t (Event.Count { name; ts = t.vnow; n })

let observe t name v =
  if t.lvl = Detail then emit t (Event.Observe { name; ts = t.vnow; v })

let instant t ?(attrs = []) name =
  if t.lvl = Detail then emit t (Event.Instant { name; ts = t.vnow; attrs })

let events t = List.rev t.rev_events

let counter_total t name =
  List.fold_left
    (fun acc e -> match e with Event.Count { name = n; n = k; _ } when n = name -> acc + k | _ -> acc)
    0 t.rev_events
