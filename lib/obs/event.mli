(** Trace events: the unit of observability.

    All timestamps are virtual seconds on the deterministic [Vclock]
    timeline — the tracer's "now" only advances when a pipeline stage
    charges modelled time — so an event stream is a pure function of the
    configuration and seed. Events serialize one-per-line as JSON (the
    JSONL journal format replayed by [xpiler trace]). *)

type attrs = (string * string) list

type t =
  | Span of {
      name : string;
      cat : string;  (** grouping: "translate", "phase", "pass", "stage" *)
      ts : float;  (** virtual start time, seconds *)
      dur : float;  (** virtual duration, seconds *)
      depth : int;  (** nesting depth at which the span was open *)
      attrs : attrs;
    }
  | Instant of { name : string; ts : float; attrs : attrs }
      (** a point event: outcomes, decisions *)
  | Count of { name : string; ts : float; n : int }
      (** counter increment (monotone; summaries report the total) *)
  | Observe of { name : string; ts : float; v : float }
      (** histogram sample (summaries report n/min/mean/max) *)

val name : t -> string
val ts : t -> float

val to_json : t -> Json.t
val of_json : Json.t -> (t, string) result

val encode_line : t -> string
(** One JSONL line, without the trailing newline. *)

val decode_line : string -> (t, string) result
