let encode events =
  let buf = Buffer.create 4096 in
  List.iter
    (fun e ->
      Buffer.add_string buf (Event.encode_line e);
      Buffer.add_char buf '\n')
    events;
  Buffer.contents buf

let decode text =
  let lines = String.split_on_char '\n' text in
  let rec go lineno acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest ->
      if String.trim line = "" then go (lineno + 1) acc rest
      else begin
        match Event.decode_line line with
        | Ok e -> go (lineno + 1) (e :: acc) rest
        | Error m -> Error (Printf.sprintf "line %d: %s" lineno m)
      end
  in
  go 1 [] lines

(* Buffered sink: one open channel for the whole journaling session instead
   of an open/write/close cycle per append. The one-shot functions below are
   wrappers over a short-lived sink. *)
type sink = { oc : out_channel; mutable closed : bool }

let open_sink ?(append = false) path =
  let flags =
    if append then [ Open_wronly; Open_creat; Open_append ]
    else [ Open_wronly; Open_creat; Open_trunc ]
  in
  { oc = open_out_gen flags 0o644 path; closed = false }

let emit sink events =
  if sink.closed then invalid_arg "Journal.emit: sink is closed";
  output_string sink.oc (encode events)

let close sink =
  if not sink.closed then begin
    sink.closed <- true;
    close_out sink.oc
  end

let write_gen ~append path events =
  let sink = open_sink ~append path in
  Fun.protect ~finally:(fun () -> close sink) (fun () -> emit sink events)

let write_file path events = write_gen ~append:false path events
let append_file path events = write_gen ~append:true path events

let read_file path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | text -> decode text
  | exception Sys_error m -> Error m
