let encode events =
  let buf = Buffer.create 4096 in
  List.iter
    (fun e ->
      Buffer.add_string buf (Event.encode_line e);
      Buffer.add_char buf '\n')
    events;
  Buffer.contents buf

let decode text =
  let lines = String.split_on_char '\n' text in
  let rec go lineno acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest ->
      if String.trim line = "" then go (lineno + 1) acc rest
      else begin
        match Event.decode_line line with
        | Ok e -> go (lineno + 1) (e :: acc) rest
        | Error m -> Error (Printf.sprintf "line %d: %s" lineno m)
      end
  in
  go 1 [] lines

let write_gen flags path events =
  let oc = open_out_gen flags 0o644 path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (encode events))

let write_file path events = write_gen [ Open_wronly; Open_creat; Open_trunc ] path events
let append_file path events = write_gen [ Open_wronly; Open_creat; Open_append ] path events

let read_file path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | text -> decode text
  | exception Sys_error m -> Error m
