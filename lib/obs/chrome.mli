(** Chrome trace-event exporter.

    Renders an event stream as the Trace Event Format JSON that
    [chrome://tracing] and Perfetto load: spans become complete ("X")
    events, instants "i" events, counters cumulative "C" tracks and
    histogram samples their own "C" track. Virtual seconds map to
    microseconds, so a modelled 2.5-hour compile renders as a 2.5-hour
    timeline — reproducible down to the byte across runs with one seed. *)

val to_string : Event.t list -> string
(** A complete [{"traceEvents": [...], ...}] JSON document. *)

val to_json : Event.t list -> Json.t
