(* Bench-history regression watchdog. See bench_history.mli. *)

type entry = { bench : string; smoke : bool; time : float option; metrics : (string * float) list }

let entry_to_json e =
  let base = [ ("bench", Json.Str e.bench); ("smoke", Json.Bool e.smoke) ] in
  let time = match e.time with Some t -> [ ("time", Json.Float t) ] | None -> [] in
  let metrics = [ ("metrics", Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) e.metrics)) ] in
  Json.Obj (base @ time @ metrics)

let entry_of_json j =
  match (Json.member "bench" j, Json.member "smoke" j, Json.member "metrics" j) with
  | Some (Json.Str bench), Some (Json.Bool smoke), Some (Json.Obj fields) ->
    let time = Option.bind (Json.member "time" j) Json.to_float in
    let metrics =
      List.filter_map (fun (k, v) -> Option.map (fun f -> (k, f)) (Json.to_float v)) fields
    in
    Ok { bench; smoke; time; metrics = List.sort compare metrics }
  | _ -> Error "history entry: expected {bench, smoke, metrics}"

let default_path = "results/history.jsonl"

let append ?(path = default_path) e =
  (match Filename.dirname path with
  | "" | "." -> ()
  | dir -> Xpiler_util.Fsx.mkdir_p dir);
  let oc = open_out_gen [ Open_wronly; Open_creat; Open_append ] 0o644 path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      (* a single one-line write: concurrent bench rules appending to the
         same history interleave at line granularity *)
      output_string oc (Json.to_string (entry_to_json e) ^ "\n"))

let load ?(path = default_path) () =
  if not (Sys.file_exists path) then Ok []
  else begin
    let ic = open_in_bin path in
    let text =
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    let lines = String.split_on_char '\n' text in
    let rec go lineno acc = function
      | [] -> Ok (List.rev acc)
      | line :: rest ->
        if String.trim line = "" then go (lineno + 1) acc rest
        else begin
          match Json.parse line with
          | Error m -> Error (Printf.sprintf "%s, line %d: %s" path lineno m)
          | Ok j -> (
            match entry_of_json j with
            | Ok e -> go (lineno + 1) (e :: acc) rest
            | Error m -> Error (Printf.sprintf "%s, line %d: %s" path lineno m))
        end
    in
    go 1 [] lines
  end

(* ---- headline extraction ------------------------------------------------- *)

let geomean = function
  | [] -> 0.0
  | xs -> exp (List.fold_left (fun a x -> a +. log x) 0.0 xs /. float_of_int (List.length xs))

let mean = function
  | [] -> 0.0
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let read_json_file path =
  if not (Sys.file_exists path) then Error (path ^ ": not found")
  else begin
    let ic = open_in_bin path in
    let text =
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    match Json.parse text with Ok j -> Ok j | Error m -> Error (path ^ ": " ^ m)
  end

let mfloat name j = Option.bind (Json.member name j) Json.to_float

let kernel_floats field j =
  match Json.member "kernels" j with
  | Some (Json.List ks) -> List.filter_map (mfloat field) ks
  | _ -> []

let smoke_of j = match Json.member "smoke" j with Some (Json.Bool b) -> b | _ -> false

let of_bench_json ~bench j =
  let metrics =
    match bench with
    | "eval" ->
      let g = Option.value ~default:0.0 (mfloat "geomean_speedup" j) in
      let eps = geomean (kernel_floats "compiled_elems_per_sec" j) in
      let par =
        match Json.member "tuning" j with Some t -> Option.value ~default:0.0 (mfloat "parallel_speedup" t) | None -> 0.0
      in
      (* absent (not 0.0) when the bench ran without the native toolchain, so
         the spec below is skipped rather than tripped on closure-only hosts *)
      let native =
        match mfloat "native_speedup_geomean" j with
        | Some n -> [ ("native_speedup_geomean", n) ]
        | None -> []
      in
      [ ("compiled_eps_geomean", eps); ("geomean_speedup", g); ("parallel_speedup", par) ]
      @ native
    | "tuning" ->
      let reductions = kernel_floats "eval_reduction" j in
      let ratios = kernel_floats "best_reward_ratio" j in
      (* absent (not 0.0) on schema-v1 files that predate the durable store,
         so histories spanning the schema change skip the spec instead of
         reading the old runs as total regressions *)
      let store_warm =
        match Json.member "store_warm_start" j with
        | Some s -> (
          match mfloat "warm_reduction_mean" s with
          | Some v -> [ ("store_warm_reduction_mean", v) ]
          | None -> [])
        | None -> []
      in
      [
        ("best_reward_ratio_min", List.fold_left Float.min infinity (1.0 :: ratios));
        ("eval_reduction_mean", mean reductions);
      ]
      @ store_warm
    | "resilience" ->
      [
        ("ladder_broken", Option.value ~default:0.0 (mfloat "total_ladder_broken" j));
        ("seed_broken", Option.value ~default:0.0 (mfloat "total_seed_broken" j));
      ]
    | "repair" ->
      let v name = Option.value ~default:0.0 (mfloat name j) in
      [
        ("steps_reduction", v "steps_reduction");
        ("evals_reduction", v "evals_reduction");
        ("wall_speedup", v "wall_speedup");
        ("optimized_broken", v "optimized_broken");
        ("speculation_win_rate", v "speculation_win_rate");
      ]
    | other -> invalid_arg ("Bench_history.of_bench_json: unknown bench " ^ other)
  in
  { bench; smoke = smoke_of j; time = None; metrics = List.sort compare metrics }

let of_bench_file ~bench path =
  match read_json_file path with Ok j -> Ok (of_bench_json ~bench j) | Error m -> Error m

(* ---- regression specs ---------------------------------------------------- *)

type direction = Higher | Lower
type noise = Exact | Wall

type spec = {
  metric : string;
  direction : direction;
  noise : noise;
  rel_threshold : float;
  abs_slack : float;
  gated : bool;
}

let specs = function
  | "eval" ->
    [
      { metric = "geomean_speedup"; direction = Higher; noise = Wall; rel_threshold = 0.25; abs_slack = 0.0; gated = true };
      { metric = "compiled_eps_geomean"; direction = Higher; noise = Wall; rel_threshold = 0.35; abs_slack = 0.0; gated = true };
      (* parallel speedup collapses to ~1 on single-core hosts; recorded but
         never gated *)
      { metric = "parallel_speedup"; direction = Higher; noise = Wall; rel_threshold = 1.0; abs_slack = 0.0; gated = false };
      { metric = "native_speedup_geomean"; direction = Higher; noise = Wall; rel_threshold = 0.25; abs_slack = 0.0; gated = true };
    ]
  | "tuning" ->
    [
      { metric = "eval_reduction_mean"; direction = Higher; noise = Exact; rel_threshold = 0.15; abs_slack = 0.05; gated = true };
      { metric = "best_reward_ratio_min"; direction = Higher; noise = Exact; rel_threshold = 0.05; abs_slack = 0.0; gated = true };
      (* deterministic eval counts, like eval_reduction_mean; only present
         on schema-v2 BENCH_tuning.json files (diff skips absent metrics) *)
      { metric = "store_warm_reduction_mean"; direction = Higher; noise = Exact; rel_threshold = 0.15; abs_slack = 0.05; gated = true };
    ]
  | "resilience" ->
    [
      { metric = "ladder_broken"; direction = Lower; noise = Exact; rel_threshold = 0.0; abs_slack = 0.5; gated = true };
      { metric = "seed_broken"; direction = Lower; noise = Exact; rel_threshold = 0.0; abs_slack = 0.5; gated = false };
    ]
  | "repair" ->
    [
      (* solver work is deterministic (fresh steps/evals counted on the
         master domain), so reductions gate exactly *)
      { metric = "steps_reduction"; direction = Higher; noise = Exact; rel_threshold = 0.15; abs_slack = 0.1; gated = true };
      { metric = "evals_reduction"; direction = Higher; noise = Exact; rel_threshold = 0.15; abs_slack = 0.1; gated = true };
      { metric = "optimized_broken"; direction = Lower; noise = Exact; rel_threshold = 0.0; abs_slack = 0.5; gated = true };
      { metric = "wall_speedup"; direction = Higher; noise = Wall; rel_threshold = 0.35; abs_slack = 0.0; gated = true };
      { metric = "speculation_win_rate"; direction = Higher; noise = Exact; rel_threshold = 1.0; abs_slack = 0.0; gated = false };
    ]
  | _ -> []

(* ---- diffing ------------------------------------------------------------- *)

type verdict = {
  metric : string;
  current : float;
  baseline : float option;  (** median of matching history entries *)
  n_history : int;
  regressed : bool;
  detail : string;
}

let median xs =
  match List.sort compare xs with
  | [] -> None
  | sorted ->
    let arr = Array.of_list sorted in
    let n = Array.length arr in
    Some (if n mod 2 = 1 then arr.(n / 2) else (arr.((n / 2) - 1) +. arr.(n / 2)) /. 2.0)

let diff ?(threshold_scale = 1.0) ?(exact_only = false) ~history current =
  let matching = List.filter (fun e -> e.bench = current.bench && e.smoke = current.smoke) history in
  let specs = specs current.bench in
  List.filter_map
    (fun spec ->
      if exact_only && spec.noise <> Exact then None
      else
        match List.assoc_opt spec.metric current.metrics with
        | None -> None
        | Some cur ->
          let past = List.filter_map (fun e -> List.assoc_opt spec.metric e.metrics) matching in
          let baseline = median past in
          let verdict =
            match baseline with
            | None -> { metric = spec.metric; current = cur; baseline = None; n_history = 0; regressed = false; detail = "no history" }
            | Some base ->
              let thr = spec.rel_threshold *. threshold_scale in
              let slack = spec.abs_slack *. threshold_scale in
              let drop, direction_word =
                match spec.direction with
                | Higher -> (base -. cur, "below")
                | Lower -> (cur -. base, "above")
              in
              (* zero baseline: a relative drop is undefined, and treating the
                 *absolute* drop as a ratio silently compared incomparable
                 units (a metric like ladder_broken moving off a zero median
                 slipped past large thresholds). Semantics: any worsening move
                 off a zero baseline is an unbounded relative change, so only
                 the absolute slack can excuse it. *)
              let rel_drop =
                if Float.abs base > 0.0 then drop /. Float.abs base
                else if drop > 0.0 then Float.infinity
                else 0.0
              in
              let regressed = spec.gated && drop > slack && rel_drop > thr in
              let detail =
                if regressed && Float.abs base = 0.0 then
                  Printf.sprintf
                    "%.4g is %s the zero median of %d run(s) by more than the %.4g slack" cur
                    direction_word (List.length past) slack
                else if regressed then
                  Printf.sprintf "%.4g is %.0f%% %s the median of %d run(s) (%.4g); threshold %.0f%%"
                    cur (rel_drop *. 100.0) direction_word (List.length past) base (thr *. 100.0)
                else if spec.gated then Printf.sprintf "ok (median of %d run(s): %.4g)" (List.length past) base
                else Printf.sprintf "recorded, not gated (median %.4g)" base
              in
              { metric = spec.metric; current = cur; baseline = Some base; n_history = List.length past; regressed; detail }
          in
          Some verdict)
    specs

let regressions verdicts = List.filter (fun v -> v.regressed) verdicts

let record ?path ?(exact_only = true) entry =
  (* a corrupt history is an error, not an empty baseline: silently treating
     it as empty made the watchdog pass with nothing to compare against and
     then kept appending to the broken file *)
  match load ?path () with
  | Error m -> Error m
  | Ok prior ->
    let verdicts = diff ~exact_only ~history:prior entry in
    append ?path entry;
    Ok (regressions verdicts)
