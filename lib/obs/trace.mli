(** Ambient tracing facade.

    The pipeline's libraries (neural, repair, smt, tuning, machine) record
    metrics without threading a tracer through every signature: they call
    the functions below, which no-op unless a tracer is installed.
    [Core.Xpiler] installs one per translation when
    [Config.trace_level <> Off]; the bench harness installs one around a
    whole experiment to journal every case into one file.

    The current tracer is *domain-local*: the pipeline is deterministic and
    effectively single-threaded per domain, and worker domains spawned by
    [Util.Pool] start with no tracer, so pooled tasks can never race on the
    master's event stream. Pool users that must keep [jobs=1] and [jobs>1]
    byte-identical wrap task bodies in {!without} and re-emit through the
    pool's deferred-replay buffers instead. *)

val install : Tracer.t -> unit
val uninstall : unit -> unit
val current : unit -> Tracer.t option

val without : (unit -> 'a) -> 'a
(** Runs the function with tracing suspended on this domain (restored on
    exit, including by exception). Used around pooled task bodies so inline
    ([jobs=1]) execution emits exactly what worker-domain execution does:
    nothing ambient. *)

val enabled : unit -> bool
(** A tracer is installed (at any level). *)

val span : ?cat:string -> ?attrs:Event.attrs -> string -> (unit -> 'a) -> 'a
(** Runs the function inside a span on the current tracer; just runs it
    when tracing is off. While {!Prof.is_enabled}, the same span also feeds
    the wall-clock profiler — via its segregated stream, so the tracer's
    event sequence is unchanged. *)

val count : ?n:int -> string -> unit
val observe : string -> float -> unit
val instant : ?attrs:Event.attrs -> string -> unit
