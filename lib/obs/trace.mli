(** Ambient tracing facade.

    The pipeline's libraries (neural, repair, smt, tuning, machine) record
    metrics without threading a tracer through every signature: they call
    the functions below, which no-op unless a tracer is installed.
    [Core.Xpiler] installs one per translation when
    [Config.trace_level <> Off]; the bench harness installs one around a
    whole experiment to journal every case into one file.

    Everything is single-threaded and deterministic, so a process-global
    current tracer is sound here the same way it is for a logger. *)

val install : Tracer.t -> unit
val uninstall : unit -> unit
val current : unit -> Tracer.t option

val enabled : unit -> bool
(** A tracer is installed (at any level). *)

val span : ?cat:string -> ?attrs:Event.attrs -> string -> (unit -> 'a) -> 'a
(** Runs the function inside a span on the current tracer; just runs it
    when tracing is off. *)

val count : ?n:int -> string -> unit
val observe : string -> float -> unit
val instant : ?attrs:Event.attrs -> string -> unit
