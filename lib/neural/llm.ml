open Xpiler_ir
open Xpiler_machine
module Rng = Xpiler_util.Rng
module Vclock = Xpiler_util.Vclock
module Trace = Xpiler_obs.Trace
module Metrics = Xpiler_obs.Metrics
module Pass = Xpiler_passes.Pass

type t = { rng : Rng.t; clock : Vclock.t option }

let create ~seed ?clock () = { rng = Rng.create seed; clock }

let seed_fork t salt =
  let r = Rng.copy t.rng in
  let base = Rng.int r 1_000_000_000 in
  { t with rng = Rng.create (base + salt) }

type translation = Garbage | Translated of Kernel.t * Fault.injected list

let charge t stage seconds =
  match t.clock with Some c -> Vclock.charge c stage seconds | None -> ()

(* an LLM call costs time proportional to program size *)
let llm_call_seconds kernel =
  let stmts = Stmt.count_stmts kernel.Kernel.body in
  90.0 +. (float_of_int stmts *. 8.0)

let severity_name = function Fault.Structural -> "structural" | Fault.Detail -> "detail"

(* Stable: the simulated LLM runs on the master domain; attempt and garbage
   counts are a pure function of workload and seed. *)
let m_attempts =
  Metrics.counter ~help:"simulated LLM calls (translate + pass application)"
    "xpiler_llm_attempts_total"

let m_garbage =
  Metrics.counter ~help:"LLM responses discarded as garbage" "xpiler_llm_garbage_total"

let record_faults faults =
  List.iter
    (fun (f : Fault.injected) ->
      Trace.count
        (Printf.sprintf "fault.%s.%s" (severity_name f.Fault.severity)
           (Fault.category_name f.Fault.category)))
    faults

let sample_faults rng ~target (p : Profile.t) kernel =
  let try_inject (kernel, faults) prob severity category =
    if Rng.bernoulli rng prob then
      match Fault.inject rng ~target severity category kernel with
      | Some (k', f) -> (k', f :: faults)
      | None -> (kernel, faults)
    else (kernel, faults)
  in
  let acc = (kernel, []) in
  let acc = try_inject acc p.Profile.structural_parallel Fault.Structural Fault.Parallelism in
  let acc = try_inject acc p.Profile.structural_memory Fault.Structural Fault.Memory in
  let acc = try_inject acc p.Profile.structural_instruction Fault.Structural Fault.Instruction in
  let acc =
    let k, faults = acc in
    if Rng.bernoulli rng p.Profile.detail_bound then
      match Fault.inject_bound rng k with Some (k', f) -> (k', f :: faults) | None -> (k, faults)
    else acc
  in
  let acc =
    let k, faults = acc in
    if Rng.bernoulli rng p.Profile.detail_index then
      match Fault.inject_index rng k with Some (k', f) -> (k', f :: faults) | None -> (k, faults)
    else acc
  in
  let k, faults =
    let k, faults = acc in
    if Rng.bernoulli rng p.Profile.detail_param then
      match Fault.inject_param rng k with Some (k', f) -> (k', f :: faults) | None -> (k, faults)
    else acc
  in
  let faults = List.rev faults in
  record_faults faults;
  (k, faults)

let translate_program t ~profile ~src ~dst ~op ~shape =
  let difficulty = Profile.direction_difficulty ~src ~dst in
  let p = Profile.scale profile difficulty in
  let target = Platform.of_id dst in
  (* the ground-truth sketch: the idiomatic target program *)
  let truth = Xpiler_ops.Idiom.source dst op shape in
  Metrics.inc m_attempts;
  Trace.count "llm.attempts";
  charge t Vclock.Llm_transform (llm_call_seconds truth);
  if Rng.bernoulli t.rng p.Profile.gives_up then begin
    Metrics.inc m_garbage;
    Trace.count "llm.garbage";
    Garbage
  end
  else begin
    let k, faults = sample_faults t.rng ~target p truth in
    Translated (k, faults)
  end

let apply_pass t ~profile ~target ?prompt spec kernel =
  match Pass.apply ~platform:target spec kernel with
  | Error m -> Error m
  | Ok transformed ->
    Metrics.inc m_attempts;
    Trace.count "llm.attempts";
    charge t Vclock.Llm_transform (llm_call_seconds transformed);
    (* a richer prompt (manual references present) reduces fault rates *)
    let quality =
      match prompt with
      | Some mp when mp.Meta_prompt.examples <> [] -> 0.8
      | Some _ -> 1.0
      | None -> 1.2
    in
    let p = Profile.scale profile quality in
    Ok (sample_faults t.rng ~target p transformed)
