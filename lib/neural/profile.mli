open Xpiler_machine

(** Behavioural profiles of the simulated code LLMs.

    GPT-4 is not available in this sealed environment; the neural oracle
    substitutes it with a structural transformer plus *calibrated fault
    injection* (see DESIGN.md). A profile gives the per-category fault
    probabilities; the taxonomy follows the paper's §2.2: parallelism-,
    memory- and instruction-related errors, each either *structural*
    (compile-breaking, beyond SMT repair) or *detail* (loop bounds, index
    offsets, intrinsic parameters — the class SMT-based repair targets). *)

type t = {
  name : string;
  structural_parallel : float;  (** wrong/missing parallel built-in mapping *)
  structural_memory : float;  (** wrong memory scope / missing staging *)
  structural_instruction : float;  (** unsupported or malformed intrinsic *)
  detail_bound : float;  (** loop bound off by a small amount *)
  detail_index : float;  (** index expression off *)
  detail_param : float;  (** intrinsic length/parameter wrong *)
  gives_up : float;  (** emits unparseable output for the target entirely *)
}

val gpt4_zero_shot : t
val gpt4_few_shot : t
val o1_zero_shot : t
val o1_few_shot : t

val pass_level : annotated:bool -> t
(** Per-pass behaviour inside QiMeng-Xpiler's decomposed pipeline: each pass
    is a much smaller ask than whole-program translation, so fault rates are
    far lower; program annotation (Algorithm 1) lowers the structural rates
    further. *)

val direction_difficulty : src:Platform.id -> dst:Platform.id -> float
(** Multiplier on all fault probabilities for a translation direction.
    Targeting BANG C (uncommon, SIMD, split NRAM/WRAM) is hardest; CUDA<->HIP
    is nearly free; the CPU sits in between, per the paper's Table 6. *)

val scale : t -> float -> t
(** Scale every fault probability (clamped to [0, 0.98]). *)

val damp : t -> Fault.category list -> float -> t
(** [damp t cats f] multiplies only the fault rates belonging to the listed
    fault classes by [f] — the modelled effect of a fault-specific hint in a
    re-prompt (paper §2.2 taxonomy): a hint about parallelism built-ins does
    not make index arithmetic any more reliable. *)
