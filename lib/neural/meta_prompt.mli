open Xpiler_ir
open Xpiler_machine

(** Meta-prompts (paper §4.2): the per-pass prompt template instantiated for
    a source program — platform-agnostic description, platform-specific
    examples retrieved from the target manual, and optional tuning knobs. *)

type t = {
  pass_name : string;
  agnostic : string;
  examples : string list;  (** retrieved from the target platform's manual *)
  knobs : string option;  (** present for loop split / reorder (Figure 6) *)
  hints : string list;
      (** fault-specific guidance added when re-prompting after a failed
          validation (escalation ladder, rung 1); empty on a first attempt *)
}

val build : target:Platform.id -> Xpiler_passes.Pass.spec -> Kernel.t -> t

val with_hints : categories:Fault.category list -> t -> t
(** The same prompt augmented with one hint per diagnosed fault class. *)

val render : t -> string

val token_count : t -> Kernel.t -> int
(** Rough prompt+program size used by the compile-time model (Figure 8). *)
