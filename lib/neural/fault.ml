open Xpiler_ir
open Xpiler_machine
module Rng = Xpiler_util.Rng

type category = Parallelism | Memory | Instruction
type severity = Structural | Detail

type injected = { category : category; severity : severity; description : string }

let category_name = function
  | Parallelism -> "parallelism"
  | Memory -> "memory"
  | Instruction -> "instruction"

let rewrite_nth n select f (k : Kernel.t) =
  Kernel.map_body (Xpiler_passes.Rewrite.rewrite_nth n select f) k

let count_matching select (k : Kernel.t) =
  Xpiler_passes.Rewrite.count_matching select k.Kernel.body

let pick_site rng select f k =
  let total = count_matching select k in
  if total = 0 then None else Some (rewrite_nth (Rng.int rng total) select f k)

(* ---- structural: parallelism ------------------------------------------------ *)

let foreign_axis (target : Platform.t) =
  match target.Platform.id with
  | Platform.Bang -> Axis.Thread_x  (* a CUDA habit on the MLU *)
  | Platform.Cuda | Platform.Hip -> Axis.Task_id
  | Platform.Vnni -> Axis.Thread_x

let inject_parallel_structural rng target k =
  let is_par = function Stmt.For { kind = Stmt.Parallel _; _ } -> true | _ -> false in
  let wrong = foreign_axis target in
  match
    pick_site rng is_par
      (function
        | Stmt.For r ->
          Stmt.For
            { r with
              var = Axis.to_string wrong;
              kind = Stmt.Parallel wrong;
              body = Stmt.subst_var r.var (Expr.Var (Axis.to_string wrong)) r.body
            }
        | s -> s)
      k
  with
  | Some k' ->
    Some
      ( k',
        { category = Parallelism;
          severity = Structural;
          description = Printf.sprintf "used foreign built-in %s" (Axis.to_string wrong)
        } )
  | None ->
    (* sequential target: fabricate a parallel loop out of the outermost one *)
    let is_outer = function Stmt.For { kind = Stmt.Serial; _ } -> true | _ -> false in
    pick_site rng is_outer
      (function
        | Stmt.For r -> Stmt.For { r with kind = Stmt.Parallel wrong }
        | s -> s)
      k
    |> Option.map (fun k' ->
           ( k',
             { category = Parallelism;
               severity = Structural;
               description =
                 Printf.sprintf "invented parallel built-in %s" (Axis.to_string wrong)
             } ))

(* the paper's canonical missing-__syncthreads fault; not part of the
   [inject] dispatch (pipeline-generated kernels rarely contain barriers) but
   used by the static-analysis tests and the lint demos *)
let inject_sync rng k =
  let is_sync = function Stmt.Sync -> true | _ -> false in
  pick_site rng is_sync (fun _ -> Stmt.Annot { key = "elided"; value = "sync" }) k
  |> Option.map (fun k' ->
         ( k',
           { category = Parallelism;
             severity = Structural;
             description = "omitted a barrier"
           } ))

(* ---- structural: memory ------------------------------------------------------ *)

let wrong_scope (target : Platform.t) current =
  match target.Platform.id with
  | Platform.Bang -> (
    (* classic WRAM/NRAM confusion (Figure 2b) or a CUDA scope *)
    match current with
    | Scope.Wram -> Scope.Nram
    | Scope.Nram -> Scope.Wram
    | _ -> Scope.Shared)
  | Platform.Cuda | Platform.Hip -> Scope.Nram
  | Platform.Vnni -> Scope.Shared

let inject_memory_structural rng target k =
  let drop_copy = Rng.bool rng in
  let is_copy = function Stmt.Memcpy _ -> true | _ -> false in
  if drop_copy && count_matching is_copy k > 0 then
    pick_site rng is_copy (fun _ -> Stmt.Annot { key = "elided"; value = "memcpy" }) k
    |> Option.map (fun k' ->
           ( k',
             { category = Memory;
               severity = Structural;
               description = "omitted a staging copy"
             } ))
  else begin
    let is_alloc = function Stmt.Alloc _ -> true | _ -> false in
    pick_site rng is_alloc
      (function
        | Stmt.Alloc r -> Stmt.Alloc { r with scope = wrong_scope target r.scope }
        | s -> s)
      k
    |> Option.map (fun k' ->
           ( k',
             { category = Memory;
               severity = Structural;
               description = "placed a buffer in the wrong memory space"
             } ))
  end

(* ---- structural: instruction -------------------------------------------------- *)

let inject_instruction_structural rng (target : Platform.t) k =
  let is_intrin = function Stmt.Intrinsic _ -> true | _ -> false in
  let unsupported =
    List.find_opt
      (fun op -> not (List.mem op target.Platform.intrinsics))
      [ Intrin.Mlp; Intrin.Mma; Intrin.Vec_add; Intrin.Conv2d ]
  in
  let swap (i : Intrin.t) : Intrin.t =
    match (Rng.bool rng, unsupported) with
    | true, Some op when Intrin.arity op = Intrin.arity i.op && Intrin.param_count op = Intrin.param_count i.op ->
      { i with op }
    | _ ->
      (* a same-shape but wrong operation: the code compiles yet computes the
         wrong thing *)
      let wrong =
        match i.op with
        | Intrin.Vec_add -> Intrin.Vec_sub
        | Intrin.Vec_sub -> Intrin.Vec_add
        | Intrin.Vec_mul -> Intrin.Vec_add
        | Intrin.Vec_max -> Intrin.Vec_min
        | Intrin.Vec_min -> Intrin.Vec_max
        | Intrin.Vec_exp -> Intrin.Vec_log
        | Intrin.Vec_tanh -> Intrin.Vec_sigmoid
        | Intrin.Vec_reduce_sum -> Intrin.Vec_reduce_max
        | Intrin.Vec_reduce_max -> Intrin.Vec_reduce_sum
        | op -> op
      in
      { i with op = wrong }
  in
  pick_site rng is_intrin
    (function Stmt.Intrinsic i -> Stmt.Intrinsic (swap i) | s -> s)
    k
  |> Option.map (fun k' ->
         ( k',
           { category = Instruction;
             severity = Structural;
             description = "selected the wrong intrinsic"
           } ))

(* ---- detail faults -------------------------------------------------------------- *)

let inject_bound rng k =
  let is_const_for = function
    | Stmt.For { extent = Expr.Int n; kind = Stmt.Serial; _ } -> n > 2
    | _ -> false
  in
  let delta = Rng.choose rng [ -2; -1; 1; 2 ] in
  pick_site rng is_const_for
    (function
      | Stmt.For ({ extent = Expr.Int n; _ } as r) ->
        Stmt.For { r with extent = Expr.Int (max 1 (n + delta)) }
      | s -> s)
    k
  |> Option.map (fun k' ->
         ( k',
           { category = Instruction;
             severity = Detail;
             description = Printf.sprintf "loop bound off by %d" delta
           } ))

let inject_index rng k =
  let is_store = function Stmt.Store _ -> true | _ -> false in
  let delta = Rng.choose rng [ -1; 1; 2 ] in
  pick_site rng is_store
    (function
      | Stmt.Store r ->
        Stmt.Store
          { r with index = Linear.normalize (Expr.Binop (Expr.Add, r.index, Expr.Int delta)) }
      | s -> s)
    k
  |> Option.map (fun k' ->
         ( k',
           { category = Memory;
             severity = Detail;
             description = Printf.sprintf "store index off by %d" delta
           } ))

let inject_param rng k =
  let is_site = function
    | Stmt.Intrinsic { params = Expr.Int _ :: _; _ } -> true
    | Stmt.Memcpy { len = Expr.Int _; _ } -> true
    | _ -> false
  in
  let perturb rng n =
    (* Figure 2c: plausible-but-wrong lengths (a power of two near the true
       value, a halved/doubled extent, or an off-by-small amount) *)
    let candidate () =
      match Rng.int rng 4 with
      | 0 -> max 1 (n / 2)
      | 1 -> n * 2
      | 2 -> max 1 (n - Rng.choose rng [ 1; 2; 64 ])
      | _ ->
        let rec pow2 p = if p * 2 > n then p else pow2 (p * 2) in
        max 1 (pow2 1)
    in
    let rec retry budget =
      let c = candidate () in
      if c <> n || budget = 0 then if c = n then n + 1 else c else retry (budget - 1)
    in
    retry 4
  in
  pick_site rng is_site
    (function
      | Stmt.Intrinsic ({ params = Expr.Int n :: rest; _ } as i) ->
        Stmt.Intrinsic { i with params = Expr.Int (perturb rng n) :: rest }
      | Stmt.Memcpy ({ len = Expr.Int n; _ } as r) ->
        Stmt.Memcpy { r with len = Expr.Int (perturb rng n) }
      | s -> s)
    k
  |> Option.map (fun k' ->
         ( k',
           { category = Instruction;
             severity = Detail;
             description = "intrinsic length parameter wrong"
           } ))

let inject rng ~target severity category k =
  match (severity, category) with
  | Structural, Parallelism -> inject_parallel_structural rng target k
  | Structural, Memory -> inject_memory_structural rng target k
  | Structural, Instruction -> inject_instruction_structural rng target k
  | Detail, Parallelism | Detail, Instruction -> (
    match inject_bound rng k with Some r -> Some r | None -> inject_param rng k)
  | Detail, Memory -> inject_index rng k
