open Xpiler_ir
module Pass = Xpiler_passes.Pass

type t = {
  pass_name : string;
  agnostic : string;
  examples : string list;
  knobs : string option;
  hints : string list;
}

(* fault-specific guidance for a re-prompt, keyed by the fault class the
   validator diagnosed on the previous attempt (escalation ladder, rung 1) *)
let hint_for = function
  | Fault.Parallelism ->
    "The previous attempt mis-mapped a parallel built-in variable. Use only \
     the target platform's built-ins, preserve the barrier structure, and do \
     not invent parallelism the target cannot launch."
  | Fault.Memory ->
    "The previous attempt mis-staged a buffer. Check every staging copy and \
     the on-chip memory space of each buffer against the target memory \
     hierarchy, and keep store indices aligned with the staged window."
  | Fault.Instruction ->
    "The previous attempt selected a wrong intrinsic or parameter. Verify \
     each intrinsic and its length parameters against the target ISA \
     reference, and re-derive loop bounds from the iteration space."

let with_hints ~categories t =
  { t with hints = List.map hint_for categories }

let agnostic_description spec =
  match Pass.name spec with
  | "loop-recovery" ->
    "Convert every parallel built-in variable of the source program into an \
     explicit sequential for loop, splitting barrier regions so that the \
     sequential execution order preserves the original lockstep semantics."
  | "loop-bind" ->
    "Assign the iterations of a sequential loop to a parallel built-in variable \
     of the target platform, recording the launch extent."
  | "loop-split" ->
    "Divide the given for loop into two nested sub-loops so the combined \
     iteration space exactly covers the original loop without remainder."
  | "loop-fuse" -> "Merge two perfectly nested loops into a single hyper-loop."
  | "loop-reorder" -> "Change the execution order of two perfectly nested loops."
  | "loop-expansion" -> "Distribute a loop body into several independent loop bodies."
  | "loop-contraction" -> "Merge the producer loop into the loop body of its consumer."
  | "cache" ->
    "Adapt the program to the target memory hierarchy: stage the accessed window \
     of a buffer into fast on-chip memory, load inputs before use and store \
     outputs after the region."
  | "pipeline" -> "Overlap data load/store with computation by software pipelining."
  | "tensorize" ->
    "Replace a scalar loop nest with the platform's specialized intrinsic that \
     performs the same computation, as used in deep learning frameworks and \
     common linear algebra kernels (SIMD)."
  | "detensorize" -> "Restore a specific loop body from special intrinsics."
  | other -> other

let retrieval_query spec kernel =
  match spec with
  | Pass.Tensorize | Pass.Detensorize ->
    let ops = Annotate.operations_in kernel in
    String.concat " " (List.map Annotate.operation_name ops)
    ^ " vector intrinsic matmul elementwise"
  | Pass.Cache _ | Pass.Rescope _ -> "memory hierarchy on-chip staging"
  | Pass.Loop_bind _ | Pass.Loop_recovery -> "parallel built-in"
  | _ -> "loop transformation"

let knob_text = function
  | Pass.Loop_split { var; factor } ->
    Some
      (Printf.sprintf
         "Split the given for loop variable %s and return a list of all possible \
          loop indices and their loop extents. The actual loop index value can be \
          calculated by combining the two loop variables without any remainders. \
          Candidate factor: %d."
         var factor)
  | Pass.Loop_reorder { var } ->
    Some (Printf.sprintf "Enumerate legal execution orders for the nest rooted at %s." var)
  | _ -> None

let build ~target spec kernel =
  let examples =
    Xpiler_manual.Corpus.search target (retrieval_query spec kernel) 3
    |> List.map (fun (e : Xpiler_manual.Corpus.entry) -> e.body)
  in
  { pass_name = Pass.describe spec;
    agnostic = agnostic_description spec;
    examples;
    knobs = knob_text spec;
    hints = []
  }

let render t =
  let b = Buffer.create 256 in
  Buffer.add_string b ("### Pass: " ^ t.pass_name ^ "\n\n");
  Buffer.add_string b (t.agnostic ^ "\n");
  if t.examples <> [] then begin
    Buffer.add_string b "\nTarget-platform references:\n";
    List.iter (fun e -> Buffer.add_string b ("- " ^ e ^ "\n")) t.examples
  end;
  (match t.knobs with
  | Some k -> Buffer.add_string b ("\nTuning knobs:\n" ^ k ^ "\n")
  | None -> ());
  if t.hints <> [] then begin
    Buffer.add_string b "\nFault-specific hints from the previous attempt:\n";
    List.iter (fun h -> Buffer.add_string b ("- " ^ h ^ "\n")) t.hints
  end;
  Buffer.contents b

let token_count t kernel =
  let words s = List.length (String.split_on_char ' ' s) in
  words (render t) + (Stmt.count_stmts kernel.Kernel.body * 12)
