open Xpiler_machine

type t = {
  name : string;
  structural_parallel : float;
  structural_memory : float;
  structural_instruction : float;
  detail_bound : float;
  detail_index : float;
  detail_param : float;
  gives_up : float;
}

(* Calibrated so the single-step baselines land near the paper's Table 2 and
   Table 6 numbers once the direction multiplier is applied. *)

let gpt4_zero_shot =
  { name = "gpt4-zero-shot";
    structural_parallel = 0.55;
    structural_memory = 0.70;
    structural_instruction = 0.70;
    detail_bound = 0.40;
    detail_index = 0.45;
    detail_param = 0.50;
    gives_up = 0.15
  }

let gpt4_few_shot =
  { name = "gpt4-few-shot";
    structural_parallel = 0.35;
    structural_memory = 0.18;
    structural_instruction = 0.40;
    detail_bound = 0.30;
    detail_index = 0.35;
    detail_param = 0.45;
    gives_up = 0.02
  }

let o1_zero_shot =
  { name = "o1-zero-shot";
    structural_parallel = 0.45;
    structural_memory = 0.55;
    structural_instruction = 0.60;
    detail_bound = 0.30;
    detail_index = 0.35;
    detail_param = 0.40;
    gives_up = 0.10
  }

let o1_few_shot =
  { name = "o1-few-shot";
    structural_parallel = 0.25;
    structural_memory = 0.12;
    structural_instruction = 0.30;
    detail_bound = 0.22;
    detail_index = 0.28;
    detail_param = 0.35;
    gives_up = 0.01
  }

let pass_level ~annotated =
  if annotated then
    { name = "xpiler-pass-annotated";
      structural_parallel = 0.0015;
      structural_memory = 0.002;
      structural_instruction = 0.002;
      detail_bound = 0.03;
      detail_index = 0.035;
      detail_param = 0.045;
      gives_up = 0.0
    }
  else
    { name = "xpiler-pass";
      structural_parallel = 0.01;
      structural_memory = 0.015;
      structural_instruction = 0.015;
      detail_bound = 0.09;
      detail_index = 0.10;
      detail_param = 0.13;
      gives_up = 0.0
    }

let target_factor = function
  | Platform.Bang -> 1.6  (* uncommon language, SIMD + NRAM/WRAM split *)
  | Platform.Vnni -> 1.0
  | Platform.Cuda -> 0.7
  | Platform.Hip -> 0.45

let src_factor = function
  | Platform.Bang -> 1.15  (* little training data to read it either *)
  | Platform.Vnni -> 0.9
  | Platform.Cuda -> 0.85
  | Platform.Hip -> 0.9

let direction_difficulty ~src ~dst =
  if Platform.equal_id src Platform.Cuda && Platform.equal_id dst Platform.Hip then 0.12
  else if Platform.equal_id src Platform.Hip && Platform.equal_id dst Platform.Cuda then 0.15
  else src_factor src *. target_factor dst

let clamp p = Float.min 0.98 (Float.max 0.0 p)

(* a fault-specific hint in the prompt lowers the rates of exactly the
   hinted fault classes; everything else is untouched (re-prompting does not
   make the model better at errors nobody told it about) *)
let damp t categories f =
  List.fold_left
    (fun t c ->
      match c with
      | Fault.Parallelism ->
        { t with structural_parallel = clamp (t.structural_parallel *. f) }
      | Fault.Memory ->
        { t with
          structural_memory = clamp (t.structural_memory *. f);
          detail_index = clamp (t.detail_index *. f)
        }
      | Fault.Instruction ->
        { t with
          structural_instruction = clamp (t.structural_instruction *. f);
          detail_bound = clamp (t.detail_bound *. f);
          detail_param = clamp (t.detail_param *. f)
        })
    t categories

let scale t f =
  { t with
    structural_parallel = clamp (t.structural_parallel *. f);
    structural_memory = clamp (t.structural_memory *. f);
    structural_instruction = clamp (t.structural_instruction *. f);
    detail_bound = clamp (t.detail_bound *. f);
    detail_index = clamp (t.detail_index *. f);
    detail_param = clamp (t.detail_param *. f);
    gives_up = clamp (t.gives_up *. f)
  }
