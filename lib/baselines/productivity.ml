open Xpiler_machine
open Xpiler_ops
module Vclock = Xpiler_util.Vclock

type coder = Senior | Junior

type entry = {
  coder : coder;
  manual_hours : float;
  manual_perf : float;
  xpiler_hours : float;
  xpiler_perf : float;
  xpiler_correct : bool;
  time_saving : float;
}

let coder_name = function Senior -> "Senior Coder" | Junior -> "Junior Coder"

(* hours of manual effort per line of target code: writing + debugging on the
   platform; the MLU is an unfamiliar DSA *)
let hours_per_loc pid = function
  | Senior -> (
    match pid with
    | Platform.Bang -> 1.6
    | Platform.Cuda | Platform.Hip -> 0.27
    | Platform.Vnni -> 0.2)
  | Junior -> (
    match pid with
    | Platform.Bang -> 8.0
    | Platform.Cuda | Platform.Hip -> 0.8
    | Platform.Vnni -> 0.6)

let debug_hours = function Senior -> 0.5 | Junior -> 3.0

(* a senior expert hand-tunes beyond the generic expert pipeline; the
   headroom is larger on the unfamiliar DSA *)
let hand_tuning_factor = function
  | Platform.Bang -> 1.45
  | Platform.Cuda | Platform.Hip -> 1.15
  | Platform.Vnni -> 1.1

(* the junior's manual kernel: correct but naive (outer loop bound, no
   staging or tensorization) *)
let naive_kernel dst (op : Opdef.t) shape =
  let serial = op.Opdef.serial shape in
  match serial.Xpiler_ir.Kernel.body with
  | Xpiler_ir.Stmt.For r :: _ when dst <> Platform.Vnni -> (
    let axis =
      match dst with Platform.Bang -> Xpiler_ir.Axis.Task_id | _ -> Xpiler_ir.Axis.Block_x
    in
    match Xpiler_passes.Loop_pass.bind ~var:r.var ~axis serial with
    | Ok k -> k
    | Error _ -> serial)
  | _ -> serial

let study ?(config = Xpiler_core.Config.tuned) ~src ~dst () =
  let op = Registry.find_exn "deformable_attention" in
  let shape = List.hd op.Opdef.shapes in
  let platform = Platform.of_id dst in
  let expert = Idiom.source dst op shape in
  let senior_tp =
    Costmodel.throughput platform expert ~shapes:[] *. hand_tuning_factor dst
  in
  let loc = Xpiler_lang.Codegen.lines_of_code (Idiom.source_text dst op shape) in
  let outcome = Xpiler_core.Xpiler.transcompile ~config ~src ~dst ~op ~shape () in
  let compile_hours = Vclock.elapsed outcome.Xpiler_core.Xpiler.clock /. 3600.0 in
  let xpiler_correct = Xpiler_core.Xpiler.accepted outcome.Xpiler_core.Xpiler.status in
  let xpiler_tp =
    match outcome.Xpiler_core.Xpiler.kernel with
    | Some k when xpiler_correct -> Costmodel.throughput platform k ~shapes:[]
    | Some k ->
      (* after manual debugging the structure is kept, details fixed: model
         its performance as the produced kernel's schedule *)
      Costmodel.throughput platform k ~shapes:[]
    | None -> senior_tp *. 0.5
  in
  let naive_tp = Costmodel.throughput platform (naive_kernel dst op shape) ~shapes:[] in
  List.map
    (fun coder ->
      let manual_hours = float_of_int loc *. hours_per_loc dst coder in
      let manual_perf =
        match coder with Senior -> 1.0 | Junior -> Float.min 1.0 (naive_tp /. senior_tp)
      in
      let xpiler_hours =
        compile_hours +. (if xpiler_correct then 0.0 else debug_hours coder)
      in
      { coder;
        manual_hours;
        manual_perf;
        xpiler_hours;
        xpiler_perf = xpiler_tp /. senior_tp;
        xpiler_correct;
        time_saving = manual_hours /. Float.max xpiler_hours 1e-6
      })
    [ Senior; Junior ]
