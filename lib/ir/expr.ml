type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Min
  | Max
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge
  | And
  | Or

type unop = Neg | Not | Exp | Log | Sqrt | Rsqrt | Tanh | Erf | Abs | Recip | Floor

type t =
  | Int of int
  | Float of float
  | Var of string
  | Load of string * t
  | Binop of binop * t * t
  | Unop of unop * t
  | Select of t * t * t
  | Cast of Dtype.t * t

let binop_to_string = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Mod -> "%"
  | Min -> "min"
  | Max -> "max"
  | Eq -> "=="
  | Ne -> "!="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | And -> "&&"
  | Or -> "||"

let unop_to_string = function
  | Neg -> "-"
  | Not -> "!"
  | Exp -> "expf"
  | Log -> "logf"
  | Sqrt -> "sqrtf"
  | Rsqrt -> "rsqrtf"
  | Tanh -> "tanhf"
  | Erf -> "erff"
  | Abs -> "fabsf"
  | Recip -> "__frcp"
  | Floor -> "floorf"

let rec equal a b =
  match (a, b) with
  | Int x, Int y -> x = y
  | Float x, Float y -> Float.equal x y
  | Var x, Var y -> String.equal x y
  | Load (b1, i1), Load (b2, i2) -> String.equal b1 b2 && equal i1 i2
  | Binop (o1, l1, r1), Binop (o2, l2, r2) -> o1 = o2 && equal l1 l2 && equal r1 r2
  | Unop (o1, e1), Unop (o2, e2) -> o1 = o2 && equal e1 e2
  | Select (c1, t1, f1), Select (c2, t2, f2) -> equal c1 c2 && equal t1 t2 && equal f1 f2
  | Cast (d1, e1), Cast (d2, e2) -> Dtype.equal d1 d2 && equal e1 e2
  | (Int _ | Float _ | Var _ | Load _ | Binop _ | Unop _ | Select _ | Cast _), _ -> false

let compare = Stdlib.compare

(* Full-depth structural hashing: the polymorphic [Hashtbl.hash] stops after
   a bounded number of nodes, which collides badly on expressions that differ
   only deep inside an index computation. Paired with [equal] this keys the
   evaluation engine's memo tables. *)
let hash_comb h x = ((h * 65599) + x) land max_int

let rec hash_fold h = function
  | Int n -> hash_comb (hash_comb h 3) n
  | Float f -> hash_comb (hash_comb h 5) (Hashtbl.hash f)
  | Var x -> hash_comb (hash_comb h 7) (Hashtbl.hash x)
  | Load (b, i) -> hash_fold (hash_comb (hash_comb h 11) (Hashtbl.hash b)) i
  | Binop (op, l, r) ->
    hash_fold (hash_fold (hash_comb (hash_comb h 13) (Hashtbl.hash op)) l) r
  | Unop (op, x) -> hash_fold (hash_comb (hash_comb h 17) (Hashtbl.hash op)) x
  | Select (c, t, f) -> hash_fold (hash_fold (hash_fold (hash_comb h 19) c) t) f
  | Cast (d, x) -> hash_fold (hash_comb (hash_comb h 23) (Hashtbl.hash d)) x

let hash e = hash_fold 0 e

let rec map f e =
  let e' =
    match e with
    | Int _ | Float _ | Var _ -> e
    | Load (b, i) -> Load (b, map f i)
    | Binop (op, l, r) -> Binop (op, map f l, map f r)
    | Unop (op, x) -> Unop (op, map f x)
    | Select (c, t, fe) -> Select (map f c, map f t, map f fe)
    | Cast (d, x) -> Cast (d, map f x)
  in
  match f e' with Some e'' -> e'' | None -> e'

let rec fold f acc e =
  let acc = f acc e in
  match e with
  | Int _ | Float _ | Var _ -> acc
  | Load (_, i) -> fold f acc i
  | Binop (_, l, r) -> fold f (fold f acc l) r
  | Unop (_, x) -> fold f acc x
  | Select (c, t, fe) -> fold f (fold f (fold f acc c) t) fe
  | Cast (_, x) -> fold f acc x

let dedup = Xpiler_util.Listx.dedup

let free_vars e =
  fold (fun acc e -> match e with Var x -> x :: acc | _ -> acc) [] e
  |> List.rev |> dedup

let buffers_read e =
  fold (fun acc e -> match e with Load (b, _) -> b :: acc | _ -> acc) [] e
  |> List.rev |> dedup

let subst_var x v e = map (function Var y when String.equal x y -> Some v | _ -> None) e

let rename_buffer ~old_name ~new_name e =
  map
    (function
      | Load (b, i) when String.equal b old_name -> Some (Load (new_name, i))
      | _ -> None)
    e

let contains_var x e = List.exists (String.equal x) (free_vars e)
let is_const = function Int _ | Float _ -> true | _ -> false

let rec eval_int env = function
  | Int n -> n
  | Float _ -> failwith "Expr.eval_int: float literal"
  | Var x -> env x
  | Load _ -> failwith "Expr.eval_int: buffer load"
  | Cast (_, e) -> eval_int env e
  | Unop (Neg, e) -> -eval_int env e
  | Unop (Not, e) -> if eval_int env e = 0 then 1 else 0
  | Unop ((Exp | Log | Sqrt | Rsqrt | Tanh | Erf | Abs | Recip | Floor), _) ->
    failwith "Expr.eval_int: float unop"
  | Select (c, t, f) -> if eval_int env c <> 0 then eval_int env t else eval_int env f
  | Binop (op, l, r) -> (
    let a = eval_int env l and b = eval_int env r in
    match op with
    | Add -> a + b
    | Sub -> a - b
    | Mul -> a * b
    | Div ->
      if b = 0 then failwith "Expr.eval_int: division by zero"
      else a / b
    | Mod -> if b = 0 then failwith "Expr.eval_int: modulo by zero" else a mod b
    | Min -> min a b
    | Max -> max a b
    | Eq -> if a = b then 1 else 0
    | Ne -> if a <> b then 1 else 0
    | Lt -> if a < b then 1 else 0
    | Le -> if a <= b then 1 else 0
    | Gt -> if a > b then 1 else 0
    | Ge -> if a >= b then 1 else 0
    | And -> if a <> 0 && b <> 0 then 1 else 0
    | Or -> if a <> 0 || b <> 0 then 1 else 0)

(* --- Simplification --------------------------------------------------- *)

let fold_binop op a b =
  match op with
  | Add -> Some (a + b)
  | Sub -> Some (a - b)
  | Mul -> Some (a * b)
  | Div -> if b = 0 then None else Some (a / b)
  | Mod -> if b = 0 then None else Some (a mod b)
  | Min -> Some (min a b)
  | Max -> Some (max a b)
  | Eq -> Some (if a = b then 1 else 0)
  | Ne -> Some (if a <> b then 1 else 0)
  | Lt -> Some (if a < b then 1 else 0)
  | Le -> Some (if a <= b then 1 else 0)
  | Gt -> Some (if a > b then 1 else 0)
  | Ge -> Some (if a >= b then 1 else 0)
  | And -> Some (if a <> 0 && b <> 0 then 1 else 0)
  | Or -> Some (if a <> 0 || b <> 0 then 1 else 0)

let simplify_node = function
  | Binop (op, Int a, Int b) as e -> (
    match fold_binop op a b with Some n -> Some (Int n) | None -> Some e)
  | Binop (Add, x, Int 0) | Binop (Add, Int 0, x) -> Some x
  | Binop (Sub, x, Int 0) -> Some x
  | Binop (Mul, _, Int 0) | Binop (Mul, Int 0, _) -> Some (Int 0)
  | Binop (Mul, x, Int 1) | Binop (Mul, Int 1, x) -> Some x
  | Binop (Div, x, Int 1) -> Some x
  | Binop (Div, Int 0, _) -> Some (Int 0)
  (* (x * a) / b when b divides a: byte/element conversions in memcpy *)
  | Binop (Div, Binop (Mul, x, Int a), Int b) when b > 0 && a mod b = 0 ->
    Some (if a = b then x else Binop (Mul, x, Int (a / b)))
  | Binop (Mod, _, Int 1) -> Some (Int 0)
  | Binop (And, x, Int 1) | Binop (And, Int 1, x) -> Some x
  | Binop (And, _, Int 0) | Binop (And, Int 0, _) -> Some (Int 0)
  | Binop (Or, x, Int 0) | Binop (Or, Int 0, x) -> Some x
  (* re-associate (x + c1) + c2 -> x + (c1+c2) *)
  | Binop (Add, Binop (Add, x, Int c1), Int c2) -> Some (Binop (Add, x, Int (c1 + c2)))
  | Binop (Mul, Binop (Mul, x, Int c1), Int c2) -> Some (Binop (Mul, x, Int (c1 * c2)))
  (* x - x -> 0 for variables *)
  | Binop (Sub, Var a, Var b) when String.equal a b -> Some (Int 0)
  | Select (Int c, t, f) -> Some (if c <> 0 then t else f)
  | Unop (Neg, Int n) -> Some (Int (-n))
  | Unop (Neg, Float f) -> Some (Float (-.f))
  | Unop (Not, Int n) -> Some (Int (if n = 0 then 1 else 0))
  | Cast (_, (Int _ as e)) -> Some e
  | _ -> None

let rec simplify e =
  let e' = map simplify_node e in
  if equal e e' then e' else simplify e'

(* --- Printing ---------------------------------------------------------- *)

let precedence = function
  | Or -> 1
  | And -> 2
  | Eq | Ne -> 3
  | Lt | Le | Gt | Ge -> 4
  | Add | Sub -> 5
  | Mul | Div | Mod -> 6
  | Min | Max -> 10 (* printed as calls *)

let float_lit f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1ff" f
  else Printf.sprintf "%gf" f

let rec to_str prec e =
  match e with
  | Int n -> string_of_int n
  | Float f -> float_lit f
  | Var x -> x
  | Load (b, i) -> Printf.sprintf "%s[%s]" b (to_str 0 i)
  | Binop (((Min | Max) as op), l, r) ->
    let name = match op with Min -> "min" | _ -> "max" in
    Printf.sprintf "%s(%s, %s)" name (to_str 0 l) (to_str 0 r)
  | Binop (op, l, r) ->
    let p = precedence op in
    let s = Printf.sprintf "%s %s %s" (to_str p l) (binop_to_string op) (to_str (p + 1) r) in
    if p < prec then "(" ^ s ^ ")" else s
  | Unop (((Neg | Not) as op), x) ->
    let s = unop_to_string op ^ to_str 9 x in
    if prec > 8 then "(" ^ s ^ ")" else s
  | Unop (op, x) -> Printf.sprintf "%s(%s)" (unop_to_string op) (to_str 0 x)
  | Select (c, t, f) ->
    let s = Printf.sprintf "%s ? %s : %s" (to_str 1 c) (to_str 1 t) (to_str 1 f) in
    if prec > 0 then "(" ^ s ^ ")" else s
  | Cast (d, x) -> Printf.sprintf "(%s)%s" (Dtype.to_string d) (to_str 9 x)

let to_string e = to_str 0 e
let pp fmt e = Format.pp_print_string fmt (to_string e)

module Infix = struct
  let int n = Int n
  let flt f = Float f
  let v x = Var x
  let ( + ) a b = Binop (Add, a, b)
  let ( - ) a b = Binop (Sub, a, b)
  let ( * ) a b = Binop (Mul, a, b)
  let ( / ) a b = Binop (Div, a, b)
  let ( % ) a b = Binop (Mod, a, b)
  let ( < ) a b = Binop (Lt, a, b)
  let ( <= ) a b = Binop (Le, a, b)
  let ( > ) a b = Binop (Gt, a, b)
  let ( >= ) a b = Binop (Ge, a, b)
  let ( = ) a b = Binop (Eq, a, b)
  let ( && ) a b = Binop (And, a, b)
  let ( || ) a b = Binop (Or, a, b)
  let load b i = Load (b, i)
end
