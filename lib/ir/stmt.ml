type loop_kind = Serial | Parallel of Axis.t | Unrolled | Vectorized | Pipelined

type t =
  | For of { var : string; lo : Expr.t; extent : Expr.t; kind : loop_kind; body : t list }
  | Let of { var : string; value : Expr.t }
  | Assign of { var : string; value : Expr.t }
  | Store of { buf : string; index : Expr.t; value : Expr.t }
  | Alloc of { buf : string; scope : Scope.t; dtype : Dtype.t; size : int }
  | If of { cond : Expr.t; then_ : t list; else_ : t list }
  | Memcpy of { dst : Intrin.buf_ref; src : Intrin.buf_ref; len : Expr.t }
  | Intrinsic of Intrin.t
  | Sync
  | Annot of { key : string; value : string }

let rec equal a b =
  match (a, b) with
  | For f1, For f2 ->
    String.equal f1.var f2.var && Expr.equal f1.lo f2.lo && Expr.equal f1.extent f2.extent
    && f1.kind = f2.kind && equal_block f1.body f2.body
  | Let l1, Let l2 -> String.equal l1.var l2.var && Expr.equal l1.value l2.value
  | Assign a1, Assign a2 -> String.equal a1.var a2.var && Expr.equal a1.value a2.value
  | Store s1, Store s2 ->
    String.equal s1.buf s2.buf && Expr.equal s1.index s2.index && Expr.equal s1.value s2.value
  | Alloc a1, Alloc a2 ->
    String.equal a1.buf a2.buf && Scope.equal a1.scope a2.scope
    && Dtype.equal a1.dtype a2.dtype && a1.size = a2.size
  | If i1, If i2 ->
    Expr.equal i1.cond i2.cond && equal_block i1.then_ i2.then_
    && equal_block i1.else_ i2.else_
  | Memcpy m1, Memcpy m2 ->
    String.equal m1.dst.buf m2.dst.buf && Expr.equal m1.dst.offset m2.dst.offset
    && String.equal m1.src.buf m2.src.buf && Expr.equal m1.src.offset m2.src.offset
    && Expr.equal m1.len m2.len
  | Intrinsic i1, Intrinsic i2 -> Intrin.equal i1 i2
  | Sync, Sync -> true
  | Annot a1, Annot a2 -> String.equal a1.key a2.key && String.equal a1.value a2.value
  | ( (For _ | Let _ | Assign _ | Store _ | Alloc _ | If _ | Memcpy _ | Intrinsic _ | Sync
      | Annot _), _ ) -> false

and equal_block b1 b2 = List.length b1 = List.length b2 && List.for_all2 equal b1 b2

let rec hash_fold h stmt =
  let comb = Expr.hash_comb in
  match stmt with
  | For r ->
    hash_fold_block
      (Expr.hash_fold
         (Expr.hash_fold
            (comb (comb (comb h 3) (Hashtbl.hash r.var)) (Hashtbl.hash r.kind))
            r.lo)
         r.extent)
      r.body
  | Let r -> Expr.hash_fold (comb (comb h 5) (Hashtbl.hash r.var)) r.value
  | Assign r -> Expr.hash_fold (comb (comb h 7) (Hashtbl.hash r.var)) r.value
  | Store r ->
    Expr.hash_fold (Expr.hash_fold (comb (comb h 11) (Hashtbl.hash r.buf)) r.index) r.value
  | Alloc r ->
    comb
      (comb (comb (comb (comb h 13) (Hashtbl.hash r.buf)) (Hashtbl.hash r.scope))
         (Hashtbl.hash r.dtype))
      r.size
  | If r ->
    hash_fold_block (hash_fold_block (Expr.hash_fold (comb h 17) r.cond) r.then_) r.else_
  | Memcpy r ->
    Expr.hash_fold
      (Expr.hash_fold
         (Expr.hash_fold
            (comb (comb (comb h 19) (Hashtbl.hash r.dst.buf)) (Hashtbl.hash r.src.buf))
            r.dst.offset)
         r.src.offset)
      r.len
  | Intrinsic i -> Intrin.hash_fold (comb h 23) i
  | Sync -> comb h 29
  | Annot r -> comb (comb (comb h 31) (Hashtbl.hash r.key)) (Hashtbl.hash r.value)

and hash_fold_block h block = List.fold_left hash_fold (Expr.hash_comb h 37) block

let hash s = hash_fold 0 s
let hash_block b = hash_fold_block 0 b

let rec map_exprs f stmt =
  match stmt with
  | For r -> For { r with lo = f r.lo; extent = f r.extent; body = List.map (map_exprs f) r.body }
  | Let r -> Let { r with value = f r.value }
  | Assign r -> Assign { r with value = f r.value }
  | Store r -> Store { r with index = f r.index; value = f r.value }
  | Alloc _ -> stmt
  | If r ->
    If
      { cond = f r.cond;
        then_ = List.map (map_exprs f) r.then_;
        else_ = List.map (map_exprs f) r.else_
      }
  | Memcpy r ->
    Memcpy
      { dst = { r.dst with offset = f r.dst.offset };
        src = { r.src with offset = f r.src.offset };
        len = f r.len
      }
  | Intrinsic i -> Intrinsic (Intrin.map_exprs f i)
  | Sync | Annot _ -> stmt

let rec map_block f block = List.map (map_stmt f) block

and map_stmt f stmt =
  let stmt' =
    match stmt with
    | For r -> For { r with body = map_block f r.body }
    | If r -> If { r with then_ = map_block f r.then_; else_ = map_block f r.else_ }
    | Let _ | Assign _ | Store _ | Alloc _ | Memcpy _ | Intrinsic _ | Sync | Annot _ -> stmt
  in
  match f stmt' with Some s -> s | None -> stmt'

let rec iter f block = List.iter (iter_stmt f) block

and iter_stmt f stmt =
  f stmt;
  match stmt with
  | For r -> iter f r.body
  | If r ->
    iter f r.then_;
    iter f r.else_
  | Let _ | Assign _ | Store _ | Alloc _ | Memcpy _ | Intrinsic _ | Sync | Annot _ -> ()

let fold f acc block =
  let acc = ref acc in
  iter (fun s -> acc := f !acc s) block;
  !acc

let dedup = Xpiler_util.Listx.dedup

let buffers_written block =
  fold
    (fun acc s ->
      match s with
      | Store r -> r.buf :: acc
      | Memcpy r -> r.dst.buf :: acc
      | Intrinsic i -> i.dst.buf :: acc
      | _ -> acc)
    [] block
  |> List.rev |> dedup

let buffers_read block =
  fold
    (fun acc s ->
      match s with
      | Store r -> List.rev_append (Expr.buffers_read r.value @ Expr.buffers_read r.index) acc
      | Let { value; _ } | Assign { value; _ } ->
        List.rev_append (Expr.buffers_read value) acc
      | If r -> List.rev_append (Expr.buffers_read r.cond) acc
      | For r ->
        List.rev_append (Expr.buffers_read r.lo @ Expr.buffers_read r.extent) acc
      | Memcpy r -> r.src.buf :: acc
      | Intrinsic i ->
        List.rev_append (List.map (fun (r : Intrin.buf_ref) -> r.buf) i.srcs) acc
      | Alloc _ | Sync | Annot _ -> acc)
    [] block
  |> List.rev |> dedup

let allocs block =
  fold
    (fun acc s -> match s with Alloc r -> (r.buf, r.scope, r.dtype, r.size) :: acc | _ -> acc)
    [] block
  |> List.rev

let scalar_vars block =
  fold
    (fun acc s ->
      match s with Let r -> r.var :: acc | For r -> r.var :: acc | _ -> acc)
    [] block
  |> List.rev |> dedup

let loop_vars block =
  fold (fun acc s -> match s with For r -> r.var :: acc | _ -> acc) [] block
  |> List.rev |> dedup

let axes_used block =
  fold
    (fun acc s -> match s with For { kind = Parallel ax; _ } -> ax :: acc | _ -> acc)
    [] block
  |> List.rev |> dedup

let intrinsics block =
  fold (fun acc s -> match s with Intrinsic i -> i :: acc | _ -> acc) [] block |> List.rev

let has_sync block = fold (fun acc s -> acc || s = Sync) false block
let count_stmts block = fold (fun acc _ -> acc + 1) 0 block

let rec max_loop_depth block =
  List.fold_left
    (fun acc s ->
      match s with
      | For r -> max acc (1 + max_loop_depth r.body)
      | If r -> max acc (max (max_loop_depth r.then_) (max_loop_depth r.else_))
      | _ -> acc)
    0 block

let rec subst_var x v block =
  List.map
    (fun stmt ->
      match stmt with
      | For r when String.equal r.var x ->
        (* the loop rebinds x: only substitute in the bounds *)
        For { r with lo = Expr.subst_var x v r.lo; extent = Expr.subst_var x v r.extent }
      | For r ->
        For
          { r with
            lo = Expr.subst_var x v r.lo;
            extent = Expr.subst_var x v r.extent;
            body = subst_var x v r.body
          }
      | Let r when String.equal r.var x -> Let { r with value = Expr.subst_var x v r.value }
      | If r ->
        If
          { cond = Expr.subst_var x v r.cond;
            then_ = subst_var x v r.then_;
            else_ = subst_var x v r.else_
          }
      | _ -> map_exprs (Expr.subst_var x v) stmt)
    block

let rename_buffer ~old_name ~new_name block =
  map_block
    (fun stmt ->
      let ren b = if String.equal b old_name then new_name else b in
      let ren_ref (r : Intrin.buf_ref) = { r with Intrin.buf = ren r.buf } in
      let stmt = map_exprs (Expr.rename_buffer ~old_name ~new_name) stmt in
      match stmt with
      | Store r -> Some (Store { r with buf = ren r.buf })
      | Alloc r -> Some (Alloc { r with buf = ren r.buf })
      | Memcpy r -> Some (Memcpy { r with dst = ren_ref r.dst; src = ren_ref r.src })
      | Intrinsic i ->
        Some (Intrinsic { i with dst = ren_ref i.dst; srcs = List.map ren_ref i.srcs })
      | _ -> Some stmt)
    block

let find_loop v block =
  let found = ref None in
  iter
    (fun s ->
      match s with
      | For r when String.equal r.var v && !found = None -> found := Some s
      | _ -> ())
    block;
  !found

let simplify block =
  let rec go block =
    List.concat_map
      (fun stmt ->
        let stmt = map_exprs Expr.simplify stmt in
        match stmt with
        | If { cond = Expr.Int 0; else_; _ } -> go else_
        | If { cond = Expr.Int _; then_; _ } -> go then_
        | If r -> [ If { r with then_ = go r.then_; else_ = go r.else_ } ]
        | For { extent = Expr.Int n; _ } when n <= 0 -> []
        | For r -> [ For { r with body = go r.body } ]
        | _ -> [ stmt ])
      block
  in
  go block

let kind_str = function
  | Serial -> ""
  | Parallel ax -> Printf.sprintf " /* parallel %s */" (Axis.to_string ax)
  | Unrolled -> " /* unroll */"
  | Vectorized -> " /* vectorize */"
  | Pipelined -> " /* pipeline */"

let to_string ?(indent = 0) block =
  let buf = Buffer.create 256 in
  let pad n = String.make (2 * n) ' ' in
  let rec go n block = List.iter (stmt n) block
  and stmt n s =
    let p = pad n in
    match s with
    | For r ->
      Buffer.add_string buf
        (Printf.sprintf "%sfor (%s = %s; %s < %s; %s++)%s {\n" p r.var
           (Expr.to_string r.lo) r.var
           (Expr.to_string Expr.(Binop (Add, r.lo, r.extent)) )
           r.var (kind_str r.kind));
      go (n + 1) r.body;
      Buffer.add_string buf (p ^ "}\n")
    | Let r -> Buffer.add_string buf (Printf.sprintf "%slet %s = %s;\n" p r.var (Expr.to_string r.value))
    | Assign r -> Buffer.add_string buf (Printf.sprintf "%s%s = %s;\n" p r.var (Expr.to_string r.value))
    | Store r ->
      Buffer.add_string buf
        (Printf.sprintf "%s%s[%s] = %s;\n" p r.buf (Expr.to_string r.index)
           (Expr.to_string r.value))
    | Alloc r ->
      Buffer.add_string buf
        (Printf.sprintf "%salloc %s %s %s[%d];\n" p (Scope.to_string r.scope)
           (Dtype.to_string r.dtype) r.buf r.size)
    | If r ->
      Buffer.add_string buf (Printf.sprintf "%sif (%s) {\n" p (Expr.to_string r.cond));
      go (n + 1) r.then_;
      if r.else_ <> [] then begin
        Buffer.add_string buf (p ^ "} else {\n");
        go (n + 1) r.else_
      end;
      Buffer.add_string buf (p ^ "}\n")
    | Memcpy r ->
      Buffer.add_string buf
        (Printf.sprintf "%smemcpy(%s + %s, %s + %s, %s);\n" p r.dst.buf
           (Expr.to_string r.dst.offset) r.src.buf (Expr.to_string r.src.offset)
           (Expr.to_string r.len))
    | Intrinsic i -> Buffer.add_string buf (Printf.sprintf "%s%s;\n" p (Intrin.to_string i))
    | Sync -> Buffer.add_string buf (p ^ "sync;\n")
    | Annot r -> Buffer.add_string buf (Printf.sprintf "%s// @%s: %s\n" p r.key r.value)
  in
  go indent block;
  Buffer.contents buf
