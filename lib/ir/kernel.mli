(** Kernels: the unit of transcompilation.

    A kernel is a named entry point with buffer/scalar parameters, an optional
    launch configuration (extents of the parallel axes the body binds), and a
    statement body. The launch configuration plays the role of the
    [<<<grid, block>>>] launch in CUDA or the task dimension on the MLU. *)

type param = { name : string; dtype : Dtype.t; is_buffer : bool }

type t = {
  name : string;
  params : param list;
  launch : (Axis.t * int) list;  (** extent of each bound parallel axis *)
  body : Stmt.t list;
}

val make : name:string -> params:param list -> ?launch:(Axis.t * int) list -> Stmt.t list -> t
val buffer_params : t -> param list
val scalar_params : t -> param list
val param_names : t -> string list
val equal : t -> t -> bool

val hash : t -> int
(** Cheap full-depth structural hash, consistent with [equal]. Replaces
    [Marshal]-based keys in the tuner's reward cache and keys the evaluation
    engine's compile/throughput/reference-output memo tables
    (via [Hashtbl.Make]). *)

val cache_key : ?salt:string -> t -> string
(** Content-addressed cache key: a hex digest of the kernel's marshalled
    structure with {!hash} mixed in, prefixed by [salt] (e.g. a codegen
    version). Consistent with [equal]; collision-resistant, unlike the bare
    structural {!hash}. The evaluation engine's in-process compile memo and
    the native backend's on-disk artifact cache both key on this helper so
    the two can never diverge on collisions. *)

val axis_extent : t -> Axis.t -> int option
val with_body : t -> Stmt.t list -> t
val with_launch : t -> (Axis.t * int) list -> t
val total_parallelism : t -> int
(** Product of all launch extents (1 when fully sequential). *)

val map_body : (Stmt.t list -> Stmt.t list) -> t -> t
val to_string : t -> string
