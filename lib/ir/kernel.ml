type param = { name : string; dtype : Dtype.t; is_buffer : bool }

type t = {
  name : string;
  params : param list;
  launch : (Axis.t * int) list;
  body : Stmt.t list;
}

let make ~name ~params ?(launch = []) body = { name; params; launch; body }
let buffer_params t = List.filter (fun p -> p.is_buffer) t.params
let scalar_params t = List.filter (fun p -> not p.is_buffer) t.params
let param_names t = List.map (fun (p : param) -> p.name) t.params

let equal a b =
  String.equal a.name b.name && a.params = b.params && a.launch = b.launch
  && Stmt.equal_block a.body b.body

let hash t =
  let comb = Expr.hash_comb in
  let h = comb 0 (Hashtbl.hash t.name) in
  let h =
    List.fold_left
      (fun h (p : param) ->
        comb
          (comb (comb h (Hashtbl.hash p.name)) (Hashtbl.hash p.dtype))
          (if p.is_buffer then 1 else 0))
      h t.params
  in
  let h =
    List.fold_left (fun h (ax, n) -> comb (comb h (Hashtbl.hash ax)) n) (comb h 3) t.launch
  in
  Stmt.hash_fold_block h t.body

(* One keying helper shared by every content-addressed kernel cache (the
   in-process compile memo and the on-disk native-artifact cache): a hex
   digest over the marshalled structure with the structural hash mixed in,
   plus a caller salt (codegen version). Both caches key on the same string,
   so a collision cannot make them disagree about which kernel an artifact
   belongs to. *)
let cache_key ?(salt = "") t =
  Digest.to_hex
    (Digest.string
       (salt ^ "\x00" ^ string_of_int (hash t) ^ "\x00" ^ Marshal.to_string t []))

let axis_extent t ax = List.assoc_opt ax t.launch
let with_body t body = { t with body }
let with_launch t launch = { t with launch }
let total_parallelism t = List.fold_left (fun acc (_, n) -> acc * n) 1 t.launch
let map_body f t = { t with body = f t.body }

let to_string t =
  let param_str p =
    if p.is_buffer then Printf.sprintf "%s* %s" (Dtype.to_string p.dtype) p.name
    else Printf.sprintf "%s %s" (Dtype.to_string p.dtype) p.name
  in
  let launch_str =
    if t.launch = [] then ""
    else
      " /* launch: "
      ^ String.concat ", "
          (List.map (fun (ax, n) -> Printf.sprintf "%s<%d" (Axis.to_string ax) n) t.launch)
      ^ " */"
  in
  Printf.sprintf "kernel %s(%s)%s {\n%s}\n" t.name
    (String.concat ", " (List.map param_str t.params))
    launch_str
    (Stmt.to_string ~indent:1 t.body)
