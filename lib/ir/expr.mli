(** Scalar expressions of the tensor-program IR.

    Expressions are untyped at the syntax level (as in C source); the machine
    checker infers and checks types. Buffer accesses use flat 1-D indexing,
    matching the linearized address arithmetic of the paper's examples. *)

type binop =
  | Add
  | Sub
  | Mul
  | Div  (** C integer division semantics for ints, IEEE for floats *)
  | Mod
  | Min
  | Max
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge
  | And
  | Or

type unop = Neg | Not | Exp | Log | Sqrt | Rsqrt | Tanh | Erf | Abs | Recip | Floor

type t =
  | Int of int
  | Float of float
  | Var of string
  | Load of string * t  (** [Load (buf, index)] reads [buf[index]] *)
  | Binop of binop * t * t
  | Unop of unop * t
  | Select of t * t * t  (** [Select (cond, then_, else_)] *)
  | Cast of Dtype.t * t

val binop_to_string : binop -> string
val equal : t -> t -> bool

val hash : t -> int
(** Full-depth structural hash, consistent with [equal] (unlike the
    polymorphic [Hashtbl.hash], which truncates deep terms). *)

val hash_fold : int -> t -> int
(** [hash_fold h e] mixes [e]'s structure into accumulator [h]; building
    block for the [Stmt]/[Kernel] hashes. *)

(** The underlying accumulator mix, exposed so the other IR hashes compose
    with the same function. *)
val hash_comb : int -> int -> int
val compare : t -> t -> int

val map : (t -> t option) -> t -> t
(** [map f e] rewrites [e] bottom-up: at each node [n] (after children were
    rewritten), if [f n] is [Some n'] the node is replaced by [n']. *)

val fold : ('a -> t -> 'a) -> 'a -> t -> 'a
(** Pre-order fold over every sub-expression. *)

val free_vars : t -> string list
(** Variables read by [e], without duplicates, in first-occurrence order. *)

val buffers_read : t -> string list
(** Buffers loaded from, without duplicates. *)

val subst_var : string -> t -> t -> t
(** [subst_var x v e] replaces every [Var x] in [e] by [v]. *)

val rename_buffer : old_name:string -> new_name:string -> t -> t
val contains_var : string -> t -> bool
val is_const : t -> bool

val eval_int : (string -> int) -> t -> int
(** Evaluate an integer expression given a variable environment. Raises
    [Failure] on float literals, loads, or unbound variables. *)

val simplify : t -> t
(** Constant folding plus basic algebraic identities ([x+0], [x*1], [x*0],
    [x/1], flattening of nested constant additions, …). Keeps C integer
    division/modulo semantics intact. *)

val to_string : t -> string
(** C-like rendering, used by all dialect code generators. *)

val pp : Format.formatter -> t -> unit

(** Infix construction helpers. *)
module Infix : sig
  val int : int -> t
  val flt : float -> t
  val v : string -> t
  val ( + ) : t -> t -> t
  val ( - ) : t -> t -> t
  val ( * ) : t -> t -> t
  val ( / ) : t -> t -> t
  val ( % ) : t -> t -> t
  val ( < ) : t -> t -> t
  val ( <= ) : t -> t -> t
  val ( > ) : t -> t -> t
  val ( >= ) : t -> t -> t
  val ( = ) : t -> t -> t
  val ( && ) : t -> t -> t
  val ( || ) : t -> t -> t
  val load : string -> t -> t
end
