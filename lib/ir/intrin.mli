(** Unified specialized-intrinsic operations.

    Each platform maps a subset of these semantic operations to its concrete
    intrinsic spelling ([__bang_add], [wmma::mma_sync],
    [_mm512_dpbusd_epi32], …). Keeping the semantics unified lets the
    tensorize/detensorize passes and the interpreter share one definition
    while code generators pick the platform-specific surface form. *)

type op =
  | Vec_add
  | Vec_sub
  | Vec_mul
  | Vec_max
  | Vec_min
  | Vec_exp
  | Vec_log
  | Vec_sqrt
  | Vec_recip
  | Vec_tanh
  | Vec_erf
  | Vec_relu  (** dst[i] = max(src[i], 0) *)
  | Vec_sigmoid  (** dst[i] = 1 / (1 + exp(-src[i])) *)
  | Vec_gelu  (** dst[i] = 0.5 src[i] (1 + erf(src[i] / sqrt 2)) *)
  | Vec_sign  (** dst[i] = -1, 0 or 1 *)
  | Vec_scale  (** dst[i] = src[i] * scalar *)
  | Vec_adds  (** dst[i] = src[i] + scalar *)
  | Vec_fill  (** dst[i] = scalar *)
  | Vec_copy
  | Vec_reduce_sum  (** dst[0] = sum src[0..len) *)
  | Vec_reduce_max
  | Mma  (** fragment matmul-accumulate: dst[m,n] += a[m,k] * b[k,n] *)
  | Mlp  (** MLU matmul: dst[m,n] += a[m,k] * w[k,n] (weights in WRAM) *)
  | Conv2d  (** MLU convolution intrinsic *)
  | Dp4a  (** VNNI: 4-wide i8 dot product groups accumulated into i32 *)

(** A buffer operand: base buffer plus element offset. *)
type buf_ref = { buf : string; offset : Expr.t }

(** An intrinsic call. [params] meaning depends on [op]:
    - vector ops: [ length ]
    - [Vec_scale]/[Vec_adds]/[Vec_fill]: [ length; scalar ]
    - [Mma]/[Mlp]: [ m; k; n ]
    - [Conv2d]: [ co; ci; kh; kw; ho; wo; stride ]
    - [Dp4a]: [ length ] (length divisible by 4) *)
type t = { op : op; dst : buf_ref; srcs : buf_ref list; params : Expr.t list }

val op_name : op -> string
val op_of_name : string -> op option
val equal_op : op -> op -> bool
val equal : t -> t -> bool

val hash : t -> int
(** Full-depth structural hash, consistent with [equal]. *)

val hash_fold : int -> t -> int
val arity : op -> int
(** Number of source buffers the op expects. *)

val param_count : op -> int
val is_vector : op -> bool
val is_matrix : op -> bool
val all_ops : op list

val map_exprs : (Expr.t -> Expr.t) -> t -> t
(** Apply a rewriting function to every expression (offsets and params). *)

val buffers : t -> string list
(** All buffers touched (dst first), without duplicates. *)

val to_string : t -> string
