type op =
  | Vec_add
  | Vec_sub
  | Vec_mul
  | Vec_max
  | Vec_min
  | Vec_exp
  | Vec_log
  | Vec_sqrt
  | Vec_recip
  | Vec_tanh
  | Vec_erf
  | Vec_relu
  | Vec_sigmoid
  | Vec_gelu
  | Vec_sign
  | Vec_scale
  | Vec_adds
  | Vec_fill
  | Vec_copy
  | Vec_reduce_sum
  | Vec_reduce_max
  | Mma
  | Mlp
  | Conv2d
  | Dp4a

type buf_ref = { buf : string; offset : Expr.t }
type t = { op : op; dst : buf_ref; srcs : buf_ref list; params : Expr.t list }

let op_name = function
  | Vec_add -> "vec_add"
  | Vec_sub -> "vec_sub"
  | Vec_mul -> "vec_mul"
  | Vec_max -> "vec_max"
  | Vec_min -> "vec_min"
  | Vec_exp -> "vec_exp"
  | Vec_log -> "vec_log"
  | Vec_sqrt -> "vec_sqrt"
  | Vec_recip -> "vec_recip"
  | Vec_tanh -> "vec_tanh"
  | Vec_erf -> "vec_erf"
  | Vec_relu -> "vec_relu"
  | Vec_sigmoid -> "vec_sigmoid"
  | Vec_gelu -> "vec_gelu"
  | Vec_sign -> "vec_sign"
  | Vec_scale -> "vec_scale"
  | Vec_adds -> "vec_adds"
  | Vec_fill -> "vec_fill"
  | Vec_copy -> "vec_copy"
  | Vec_reduce_sum -> "vec_reduce_sum"
  | Vec_reduce_max -> "vec_reduce_max"
  | Mma -> "mma"
  | Mlp -> "mlp"
  | Conv2d -> "conv2d"
  | Dp4a -> "dp4a"

let all_ops =
  [ Vec_add; Vec_sub; Vec_mul; Vec_max; Vec_min; Vec_exp; Vec_log; Vec_sqrt; Vec_recip;
    Vec_tanh; Vec_erf; Vec_relu; Vec_sigmoid; Vec_gelu; Vec_sign; Vec_scale; Vec_adds; Vec_fill; Vec_copy; Vec_reduce_sum;
    Vec_reduce_max; Mma; Mlp; Conv2d; Dp4a ]

let op_of_name s = List.find_opt (fun op -> String.equal (op_name op) s) all_ops
let equal_op (a : op) (b : op) = a = b

let arity = function
  | Vec_add | Vec_sub | Vec_mul | Vec_max | Vec_min -> 2
  | Vec_exp | Vec_log | Vec_sqrt | Vec_recip | Vec_tanh | Vec_erf -> 1
  | Vec_relu | Vec_sigmoid | Vec_gelu | Vec_sign -> 1
  | Vec_scale | Vec_adds | Vec_copy -> 1
  | Vec_fill -> 0
  | Vec_reduce_sum | Vec_reduce_max -> 1
  | Mma | Mlp -> 2
  | Conv2d -> 2
  | Dp4a -> 2

let param_count = function
  | Vec_add | Vec_sub | Vec_mul | Vec_max | Vec_min | Vec_exp | Vec_log | Vec_sqrt
  | Vec_recip | Vec_tanh | Vec_erf | Vec_relu | Vec_sigmoid | Vec_gelu | Vec_sign
  | Vec_copy | Vec_reduce_sum | Vec_reduce_max | Dp4a -> 1
  | Vec_scale | Vec_adds | Vec_fill -> 2
  | Mma | Mlp -> 3
  | Conv2d -> 7

let is_vector = function
  | Vec_add | Vec_sub | Vec_mul | Vec_max | Vec_min | Vec_exp | Vec_log | Vec_sqrt
  | Vec_recip | Vec_tanh | Vec_erf | Vec_relu | Vec_sigmoid | Vec_gelu | Vec_sign
  | Vec_scale | Vec_adds | Vec_fill | Vec_copy
  | Vec_reduce_sum | Vec_reduce_max -> true
  | Mma | Mlp | Conv2d | Dp4a -> false

let is_matrix = function
  | Mma | Mlp | Conv2d -> true
  | _ -> false

let equal a b =
  a.op = b.op
  && String.equal a.dst.buf b.dst.buf
  && Expr.equal a.dst.offset b.dst.offset
  && List.length a.srcs = List.length b.srcs
  && List.for_all2
       (fun (x : buf_ref) (y : buf_ref) ->
         String.equal x.buf y.buf && Expr.equal x.offset y.offset)
       a.srcs b.srcs
  && List.length a.params = List.length b.params
  && List.for_all2 Expr.equal a.params b.params

let hash_fold h t =
  let comb = Expr.hash_comb in
  let href h (r : buf_ref) = Expr.hash_fold (comb h (Hashtbl.hash r.buf)) r.offset in
  let h = comb h (Hashtbl.hash t.op) in
  let h = href h t.dst in
  let h = List.fold_left href (comb h 3) t.srcs in
  List.fold_left Expr.hash_fold (comb h 5) t.params

let hash t = hash_fold 0 t

let map_exprs f t =
  { t with
    dst = { t.dst with offset = f t.dst.offset };
    srcs = List.map (fun (r : buf_ref) -> { r with offset = f r.offset }) t.srcs;
    params = List.map f t.params
  }

let buffers t =
  Xpiler_util.Listx.dedup (t.dst.buf :: List.map (fun (r : buf_ref) -> r.buf) t.srcs)

let to_string t =
  let ref_str (r : buf_ref) =
    match r.offset with
    | Expr.Int 0 -> r.buf
    | off -> Printf.sprintf "%s + %s" r.buf (Expr.to_string off)
  in
  Printf.sprintf "%s(%s)" (op_name t.op)
    (String.concat ", "
       ((ref_str t.dst :: List.map ref_str t.srcs) @ List.map Expr.to_string t.params))
