(* One diagnostic vocabulary for every static decision procedure: the
   platform checker (compilation errors) and the static analyzer (races,
   barrier divergence, bounds, def-use) report through the same record, so
   formatting and category names live in exactly one place. *)

type category = [ `Parallelism | `Memory | `Instruction | `Structural ]
type severity = Error | Warning

type t = {
  category : category;
  severity : severity;
  where : string;
  message : string;
}

let category_name = function
  | `Parallelism -> "parallelism"
  | `Memory -> "memory"
  | `Instruction -> "instruction"
  | `Structural -> "structural"

let error category where message = { category; severity = Error; where; message }
let warning category where message = { category; severity = Warning; where; message }

(* errors keep the historical checker format so messages embedded in
   pipeline statuses (and anything matching on them) are unchanged *)
let to_string d =
  match d.severity with
  | Error -> Printf.sprintf "[%s] %s: %s" (category_name d.category) d.where d.message
  | Warning ->
    Printf.sprintf "[%s|warn] %s: %s" (category_name d.category) d.where d.message

let list_to_string ds = String.concat "\n" (List.map to_string ds)
let is_error d = d.severity = Error
let errors ds = List.filter is_error ds
