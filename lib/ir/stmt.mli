(** Statements of the tensor-program IR.

    A program is a list of statements. Scalar declarations ([Let]) and buffer
    allocations ([Alloc]) scope to the end of the enclosing block, matching C
    semantics, so the dialect parsers can translate source text directly. *)

type loop_kind =
  | Serial
  | Parallel of Axis.t  (** bound to a platform parallel built-in *)
  | Unrolled
  | Vectorized
  | Pipelined  (** software-pipelined with double buffering *)

type t =
  | For of { var : string; lo : Expr.t; extent : Expr.t; kind : loop_kind; body : t list }
  | Let of { var : string; value : Expr.t }  (** scalar declaration *)
  | Assign of { var : string; value : Expr.t }  (** scalar mutation *)
  | Store of { buf : string; index : Expr.t; value : Expr.t }
  | Alloc of { buf : string; scope : Scope.t; dtype : Dtype.t; size : int }
  | If of { cond : Expr.t; then_ : t list; else_ : t list }
  | Memcpy of { dst : Intrin.buf_ref; src : Intrin.buf_ref; len : Expr.t }
      (** bulk copy of [len] elements; direction is implied by buffer scopes *)
  | Intrinsic of Intrin.t
  | Sync  (** barrier across the parallel workers of one block/cluster *)
  | Annot of { key : string; value : string }
      (** semantic marker inserted by program annotation (Algorithm 1);
          ignored by execution *)

val equal : t -> t -> bool
val equal_block : t list -> t list -> bool

val hash : t -> int
(** Full-depth structural hash, consistent with [equal]. *)

val hash_block : t list -> int
val hash_fold : int -> t -> int
val hash_fold_block : int -> t list -> int

val map_exprs : (Expr.t -> Expr.t) -> t -> t
(** Rewrite every expression in the statement tree (loop bounds, indices,
    conditions, intrinsic offsets/params, …). *)

val map_block : (t -> t option) -> t list -> t list
(** Bottom-up statement rewriting: each statement (children already
    rewritten) may be replaced. *)

val iter : (t -> unit) -> t list -> unit
(** Pre-order traversal of every statement in the block. *)

val fold : ('a -> t -> 'a) -> 'a -> t list -> 'a

val buffers_written : t list -> string list
val buffers_read : t list -> string list
val allocs : t list -> (string * Scope.t * Dtype.t * int) list
val scalar_vars : t list -> string list
(** Variables introduced by [Let] or [For]. *)

val loop_vars : t list -> string list
val axes_used : t list -> Axis.t list
val intrinsics : t list -> Intrin.t list
val has_sync : t list -> bool
val count_stmts : t list -> int
val max_loop_depth : t list -> int

val subst_var : string -> Expr.t -> t list -> t list
(** Substitute a scalar variable by an expression throughout a block
    (does not cross a rebinding of the same name). *)

val rename_buffer : old_name:string -> new_name:string -> t list -> t list

val find_loop : string -> t list -> t option
(** [find_loop v block] returns the first [For] loop with variable [v]. *)

val simplify : t list -> t list
(** Simplify all expressions; drop ifs with constant conditions and loops
    with zero extent. *)

val to_string : ?indent:int -> t list -> string
(** Dialect-neutral rendering for debugging and golden tests. *)
