open Xpiler_ir

(** Interval bounds for index expressions over loop-variable boxes. *)

type bound = { lo : int; hi : int }  (** inclusive on both ends *)

type env = (string * bound) list

val point : int -> bound
val hull : bound -> bound -> bound

val range : env -> Expr.t -> bound option
(** Sound over-approximation of the expression's value set; [None] when a
    subterm (a load, a float, an unbounded variable) defeats the interval. *)

val covers : env -> Expr.t -> bool
(** Every free variable of the expression has a range in [env]. *)

val to_string : bound -> string
