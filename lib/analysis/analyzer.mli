open Xpiler_ir

(** IR-level static analyzer: race, barrier, bounds and def-use checking.

    Runs as a pre-validation stage before the interpreter-based unit test.
    Every [Error]-severity finding is backed by an interval proof or a
    concrete witness from the bounded SMT solver; anything undecidable is
    passed through silently so the dynamic unit test stays the authority.
    Golden manual kernels and idiom sources must produce no findings. *)

type check = Race | Barrier_divergence | Out_of_bounds | Uninit_read

val check_name : check -> string

(** Repair-site hints. Constructors and [nth] ordinals mirror
    [Xpiler_repair.Localize.site] (post-order statement numbering), so the
    repairer can act on them without re-deriving sites dynamically. *)
type site =
  | Param_site of { nth : int; current : int }
  | Bound_site of { nth : int; var : string; current : int }
  | Index_site of { nth : int; buf : string }

type finding = {
  check : check;
  diag : Diag.t;  (** shared diagnostic record (same as [Checker.error]) *)
  buffers : string list;  (** buffers implicated, for localization *)
  sites : site list;  (** candidate repair sites, best first *)
}

val finding_to_string : finding -> string

val analyze : ?extents:(string * int) list -> Kernel.t -> finding list
(** Run all four checks. [extents] gives element counts of kernel parameter
    buffers (on-chip allocation sizes are read from the body); accesses to
    buffers with unknown extents are not bounds-checked. *)

val errors : finding list -> finding list
(** Only the [Error]-severity findings. *)
