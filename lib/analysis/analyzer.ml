(* Static pre-validation analyzer.

   Four checks over the affine IR, run before any interpreter-based unit
   test (paper §4's validation step). Each check is *sound for flagging*:
   a reported error is backed either by an interval proof or by a concrete
   witness from the bounded SMT solver, so golden kernels lint clean. What
   cannot be decided (data-dependent indices, unbounded loop variables,
   solver timeouts) is silently passed to the dynamic unit test, which
   remains the authority.

   1. Data races: affine read/write footprints of two iterations of a
      parallel loop are intersected; equal-stride windows are discharged by
      a stride>=span argument, everything else by asking the solver for a
      colliding pair of iterations.
   2. Barrier divergence: a Sync under control flow that depends on a
      thread-varying value deadlocks real hardware; the sequential
      interpreter cannot observe this.
   3. Out-of-bounds accesses: interval bounds of every index against the
      buffer extent, with guard-aware solver confirmation.
   4. Def-before-use on staged on-chip buffers: a read of a cache window
      that no path has written (the "omitted a staging copy" fault). *)

open Xpiler_ir
module Solver = Xpiler_smt.Solver

type check = Race | Barrier_divergence | Out_of_bounds | Uninit_read

let check_name = function
  | Race -> "race"
  | Barrier_divergence -> "barrier-divergence"
  | Out_of_bounds -> "out-of-bounds"
  | Uninit_read -> "uninit-read"

(* repair-site hints; constructors and [nth] numbering match
   [Xpiler_repair.Localize.site] (post-order statement traversal) *)
type site =
  | Param_site of { nth : int; current : int }
  | Bound_site of { nth : int; var : string; current : int }
  | Index_site of { nth : int; buf : string }

type finding = {
  check : check;
  diag : Diag.t;
  buffers : string list;
  sites : site list;
}

let finding_to_string f =
  Printf.sprintf "%s %s" (Diag.to_string f.diag) ("(" ^ check_name f.check ^ ")")

let errors fs = List.filter (fun f -> Diag.is_error f.diag) fs

(* ---- statement numbering (shared with Repair.Localize) --------------------- *)

(* the same selectors as Localize.is_{param,bound,index}_site; duplicated
   here because repair depends on analysis, not the other way around.
   test/test_analysis.ml pins the numbering equivalence end-to-end. *)
let is_param_stmt = function
  | Stmt.Intrinsic { params = Expr.Int _ :: _; _ } -> true
  | Stmt.Memcpy { len = Expr.Int _; _ } -> true
  | _ -> false

let is_bound_stmt = function
  | Stmt.For { extent = Expr.Int _; kind = Stmt.Serial; _ } -> true
  | _ -> false

let is_store_stmt = function Stmt.Store _ -> true | _ -> false

(* post-order (children before parent, left to right): the traversal order
   of both Localize.enumerate and Rewrite.rewrite_nth *)
let postorder select (k : Kernel.t) =
  let found = ref [] in
  let rec walk block =
    List.iter
      (fun s ->
        (match s with
        | Stmt.For r -> walk r.body
        | Stmt.If r ->
          walk r.then_;
          walk r.else_
        | _ -> ());
        if select s then found := s :: !found)
      block
  in
  walk k.Kernel.body;
  List.rev !found

(* index of [stmt] among the selected statements; physical equality first
   (the analyzer only numbers nodes of the kernel it walked) *)
let ordinal select k stmt =
  let rec go n = function
    | [] -> None
    | s :: rest -> if s == stmt || Stmt.equal s stmt then Some n else go (n + 1) rest
  in
  go 0 (postorder select k)

let store_site k stmt =
  match stmt with
  | Stmt.Store { buf; _ } ->
    Option.map (fun nth -> Index_site { nth; buf }) (ordinal is_store_stmt k stmt)
  | _ -> None

let param_site k stmt =
  match stmt with
  | (Stmt.Intrinsic { params = Expr.Int current :: _; _ } | Stmt.Memcpy { len = Expr.Int current; _ })
    when is_param_stmt stmt ->
    Option.map (fun nth -> Param_site { nth; current }) (ordinal is_param_stmt k stmt)
  | _ -> None

let bound_site k stmt =
  match stmt with
  | Stmt.For { var; extent = Expr.Int current; kind = Stmt.Serial; _ } ->
    Option.map (fun nth -> Bound_site { nth; var; current }) (ordinal is_bound_stmt k stmt)
  | _ -> None

(* ---- access collection ------------------------------------------------------ *)

type access = {
  kind : [ `R | `W ];
  buf : string;
  start : Expr.t;  (* first element, lets resolved *)
  width : Expr.t;  (* element count, >= 1 *)
  where : string;
  stmt : Stmt.t;  (* the statement carrying the access, for site hints *)
  guards : Expr.t list;  (* path conditions, lets resolved *)
  phase : int;  (* barrier phase within the collection root *)
  loops : Stmt.t list;  (* enclosing For statements, innermost first *)
  inner : (string * Footprint.bound) list;
      (* loop variables bound *inside* the collection root (distinct per
         parallel iteration); ranges when known *)
}

let one = Expr.Int 1

(* element footprints of an intrinsic, mirroring the interpreter's access
   pattern (lib/machine/interp.ml); accumulating ops also read their dst *)
let intrinsic_accesses (i : Intrin.t) : ([ `R | `W ] * Intrin.buf_ref * Expr.t) list =
  let open Expr in
  let src_reads w = List.map (fun (s : Intrin.buf_ref) -> (`R, s, w)) i.srcs in
  match (i.op, i.params) with
  | op, len :: _ when Intrin.is_vector op ->
    let dst_w =
      match op with Intrin.Vec_reduce_sum | Intrin.Vec_reduce_max -> one | _ -> len
    in
    ((`W, i.dst, dst_w) :: src_reads len)
  | (Intrin.Mma | Intrin.Mlp), [ m; k; n ] -> (
    let mn = Binop (Mul, m, n) in
    [ (`W, i.dst, mn); (`R, i.dst, mn) ]
    @
    match i.srcs with
    | [ a; b ] -> [ (`R, a, Binop (Mul, m, k)); (`R, b, Binop (Mul, k, n)) ]
    | _ -> [])
  | Intrin.Dp4a, len :: _ ->
    let groups = Binop (Div, len, Int 4) in
    [ (`W, i.dst, groups); (`R, i.dst, groups) ] @ src_reads len
  | Intrin.Conv2d, [ co; ci; kh; kw; ho; wo; stride ] -> (
    let out_w = Binop (Mul, Binop (Mul, ho, wo), co) in
    let wi = Binop (Add, Binop (Mul, Binop (Sub, wo, Int 1), stride), kw) in
    (* last input element the sliding window touches, + 1 *)
    let in_w =
      Binop
        ( Add,
          Binop
            ( Mul,
              Binop
                ( Add,
                  Binop
                    ( Mul,
                      Binop (Sub, Binop (Add, Binop (Mul, Binop (Sub, ho, Int 1), stride), kh), Int 1),
                      wi ),
                  Binop (Add, Binop (Mul, Binop (Sub, wo, Int 1), stride), Binop (Sub, kw, Int 1)) ),
              ci ),
          ci )
    in
    let wgt_w = Binop (Mul, Binop (Mul, co, kh), Binop (Mul, kw, ci)) in
    [ (`W, i.dst, out_w); (`R, i.dst, out_w) ]
    @
    match i.srcs with
    | [ inp; wgt ] -> [ (`R, inp, in_w); (`R, wgt, wgt_w) ]
    | _ -> [])
  | _ -> []

(* collect accesses in [block], resolving Let-bound scalars, tracking loop
   ranges, guards and (optionally) barrier phases.

   [root_env] gives ranges of variables bound outside the block; variables
   bound inside land in [inner]. [count_phases] is true when the block is
   the body of a thread-level parallel loop, where Sync is a barrier. *)
let collect ?(count_phases = false) ~root_env block =
  let out = ref [] in
  let phase = ref 0 in
  let emit ~ctx kind buf start width where stmt =
    let subst, env, guards, loops, inner = ctx in
    let resolve e =
      List.fold_left (fun e (v, value) -> Expr.subst_var v value e) e subst
    in
    ignore env;
    out :=
      { kind;
        buf;
        start = Linear.normalize (resolve start);
        width = resolve width;
        where;
        stmt;
        guards = List.map resolve guards;
        phase = !phase;
        loops;
        inner
      }
      :: !out
  in
  let emit_loads ~ctx where stmt e =
    Expr.fold
      (fun () sub ->
        match sub with
        | Expr.Load (buf, idx) -> emit ~ctx `R buf idx one where stmt
        | _ -> ())
      () e
  in
  let rec walk ctx block =
    let (subst, env, guards, loops, inner) = ctx in
    ignore (subst, env, guards, loops, inner);
    List.fold_left walk_stmt ctx block |> ignore
  and walk_stmt ctx s =
    let subst, env, guards, loops, inner = ctx in
    let resolve e =
      List.fold_left (fun e (v, value) -> Expr.subst_var v value e) e subst
    in
    match s with
    | Stmt.Let { var; value } ->
      let value = resolve value in
      emit_loads ~ctx ("let " ^ var) s value;
      (* only substitute deterministic scalar definitions *)
      let subst =
        if Expr.buffers_read value = [] then (var, value) :: List.remove_assoc var subst
        else List.remove_assoc var subst
      in
      (subst, env, guards, loops, inner)
    | Stmt.Assign { var; value } ->
      emit_loads ~ctx ("assign " ^ var) s (resolve value);
      (* mutable: forget any binding *)
      (List.remove_assoc var subst, env, guards, loops, inner)
    | Stmt.Store { buf; index; value } ->
      emit_loads ~ctx ("store " ^ buf) s (resolve index);
      emit_loads ~ctx ("store " ^ buf) s (resolve value);
      emit ~ctx `W buf index one ("store " ^ buf) s;
      ctx
    | Stmt.Memcpy { dst; src; len } ->
      emit_loads ~ctx "memcpy" s (resolve dst.offset);
      emit_loads ~ctx "memcpy" s (resolve src.offset);
      emit ~ctx `W dst.buf dst.offset len ("memcpy " ^ dst.buf) s;
      emit ~ctx `R src.buf src.offset len ("memcpy " ^ src.buf) s;
      ctx
    | Stmt.Intrinsic i ->
      let where = "intrinsic " ^ Intrin.op_name i.op in
      List.iter
        (fun (kind, (r : Intrin.buf_ref), width) -> emit ~ctx kind r.buf r.offset width where s)
        (intrinsic_accesses i);
      ctx
    | Stmt.Sync ->
      if count_phases then incr phase;
      ctx
    | Stmt.Alloc _ | Stmt.Annot _ -> ctx
    | Stmt.If { cond; then_; else_ } ->
      let cond = resolve cond in
      emit_loads ~ctx "if" s cond;
      walk (subst, env, Expr.Binop (Expr.Ne, cond, Expr.Int 0) :: guards, loops, inner) then_;
      walk
        (subst, env, Expr.Binop (Expr.Eq, cond, Expr.Int 0) :: guards, loops, inner)
        else_;
      ctx
    | Stmt.For r ->
      emit_loads ~ctx ("for " ^ r.var) s (resolve r.lo);
      emit_loads ~ctx ("for " ^ r.var) s (resolve r.extent);
      let lo_r = Footprint.range env (resolve r.lo) in
      let ext_r = Footprint.range env (resolve r.extent) in
      let dead = match ext_r with Some e when e.Footprint.hi <= 0 -> true | _ -> false in
      if not dead then begin
        let var_range =
          match (lo_r, ext_r) with
          | Some l, Some e ->
            Some { Footprint.lo = l.Footprint.lo; hi = l.Footprint.hi + e.Footprint.hi - 1 }
          | _ -> None
        in
        let subst' = List.remove_assoc r.var subst in
        let env', inner' =
          match var_range with
          | Some b -> ((r.var, b) :: env, (r.var, b) :: inner)
          | None -> (List.remove_assoc r.var env, inner)
        in
        walk (subst', env', guards, s :: loops, inner') r.body
      end;
      ctx
  in
  walk ([], root_env, [], [], []) block;
  List.rev !out

(* ---- solver plumbing --------------------------------------------------------- *)

let max_problem_size = 1_000_000
let max_steps = 400_000

(* a bounded-domain feasibility query; [None] = undecided *)
let feasible (env : Footprint.env) (constraints : Expr.t list) : (string * int) list option option =
  let vars =
    List.concat_map Expr.free_vars constraints
    |> List.sort_uniq String.compare
  in
  if not (List.for_all (fun v -> List.mem_assoc v env) vars) then None
  else begin
    let doms =
      List.map
        (fun v ->
          let b = List.assoc v env in
          (v, Solver.Range { lo = b.Footprint.lo; hi = b.Footprint.hi; stride = 1 }))
        vars
    in
    let size =
      List.fold_left
        (fun acc (_, d) ->
          match d with
          | Solver.Range { lo; hi; _ } -> acc * max 1 (hi - lo + 1)
          | Solver.Enum xs -> acc * max 1 (List.length xs))
        1 doms
    in
    if size > max_problem_size then None
    else begin
      match Solver.solve ~max_steps { vars = doms; constraints } with
      | Solver.Sat model, _ -> Some (Some model)
      | Solver.Unsat, _ -> Some None
      | Solver.Timeout, _ -> None
    end
  end

(* ---- check 3: out-of-bounds -------------------------------------------------- *)

let buffer_extents ?(extents = []) (k : Kernel.t) =
  let allocs = List.map (fun (b, _, _, size) -> (b, size)) (Stmt.allocs k.Kernel.body) in
  (* alloc sizes shadow caller-provided extents *)
  allocs @ extents

let check_oob ?(extents = []) (k : Kernel.t) =
  let sizes = buffer_extents ~extents k in
  let accesses = collect ~root_env:[] k.Kernel.body in
  let findings = ref [] in
  List.iter
    (fun a ->
      match List.assoc_opt a.buf sizes with
      | None -> ()
      | Some size -> (
        (* env visible at the access: outer env is empty here, so [inner]
           carries every bounded loop variable on the path *)
        let env = a.inner in
        let last = Expr.Binop (Expr.Add, a.start, Expr.Binop (Expr.Sub, a.width, one)) in
        match (Footprint.range env a.start, Footprint.range env last) with
        | Some s_r, Some l_r
          when s_r.Footprint.lo >= 0 && l_r.Footprint.hi <= size - 1 ->
          () (* interval proof: in bounds *)
        | Some s_r, Some l_r -> (
          (* candidate violation; confirm reachability under the guards *)
          let violation =
            Expr.Binop
              ( Expr.Or,
                Expr.Binop (Expr.Lt, a.start, Expr.Int 0),
                Expr.Binop (Expr.Gt, last, Expr.Int (size - 1)) )
          in
          match feasible env (violation :: a.guards) with
          | Some (Some model) ->
            let witness =
              match model with
              | [] -> ""
              | m ->
                " at "
                ^ String.concat ", " (List.map (fun (v, n) -> Printf.sprintf "%s=%d" v n) m)
            in
            let sites =
              List.filter_map Fun.id
                [ param_site k a.stmt ]
              @ List.filter_map (bound_site k) a.loops
              @ List.filter_map Fun.id [ store_site k a.stmt ]
            in
            findings :=
              { check = Out_of_bounds;
                diag =
                  Diag.error `Memory a.where
                    (Printf.sprintf
                       "index range %s%s exceeds %s[%d]%s"
                       (Footprint.to_string s_r)
                       (if Expr.equal a.width one then ""
                        else Printf.sprintf "..%s" (Footprint.to_string l_r))
                       a.buf size witness);
                buffers = [ a.buf ];
                sites
              }
              :: !findings
          | Some None -> () (* guards exclude every violating point *)
          | None -> () (* undecided: leave it to the unit test *))
        | _ -> () (* unbounded index: data-dependent, dynamic validation's job *)))
    accesses;
  List.rev !findings

(* ---- check 4: def-before-use on staged on-chip buffers ----------------------- *)

let check_uninit (k : Kernel.t) =
  let onchip = Hashtbl.create 8 in
  let written = Hashtbl.create 8 in
  let flagged = Hashtbl.create 4 in
  let findings = ref [] in
  let read where buf =
    if Hashtbl.mem onchip buf && (not (Hashtbl.mem written buf))
       && not (Hashtbl.mem flagged buf)
    then begin
      Hashtbl.replace flagged buf ();
      findings :=
        { check = Uninit_read;
          diag =
            Diag.error `Memory where
              (Printf.sprintf
                 "read of on-chip buffer %s before any write reaches it (missing staging copy?)"
                 buf);
          buffers = [ buf ];
          sites = []
        }
        :: !findings
    end
  in
  let write buf = Hashtbl.replace written buf () in
  let reads_of s =
    match s with
    | Stmt.Store r -> Expr.buffers_read r.index @ Expr.buffers_read r.value
    | Stmt.Let { value; _ } | Stmt.Assign { value; _ } -> Expr.buffers_read value
    | Stmt.If r -> Expr.buffers_read r.cond
    | Stmt.For r -> Expr.buffers_read r.lo @ Expr.buffers_read r.extent
    | Stmt.Memcpy r ->
      (r.src.buf :: Expr.buffers_read r.dst.offset) @ Expr.buffers_read r.src.offset
    | Stmt.Intrinsic i ->
      let acc_dst =
        match i.op with
        | Intrin.Mma | Intrin.Mlp | Intrin.Conv2d | Intrin.Dp4a -> [ i.dst.buf ]
        | _ -> []
      in
      acc_dst @ List.map (fun (r : Intrin.buf_ref) -> r.buf) i.srcs
    | Stmt.Alloc _ | Stmt.Sync | Stmt.Annot _ -> []
  in
  let where_of s =
    match s with
    | Stmt.Store r -> "store " ^ r.buf
    | Stmt.Memcpy r -> "memcpy " ^ r.src.buf
    | Stmt.Intrinsic i -> "intrinsic " ^ Intrin.op_name i.op
    | Stmt.Let r -> "let " ^ r.var
    | Stmt.Assign r -> "assign " ^ r.var
    | Stmt.If _ -> "if"
    | Stmt.For r -> "for " ^ r.var
    | _ -> "body"
  in
  let rec walk block =
    List.iter
      (fun s ->
        match s with
        | Stmt.Alloc r when Scope.is_on_chip r.scope -> Hashtbl.replace onchip r.buf ()
        | Stmt.For r ->
          List.iter (read (where_of s)) (reads_of s);
          (* any write in the body may precede a read in a later iteration:
             register the whole body's write set before walking it *)
          List.iter write (Stmt.buffers_written r.body);
          walk r.body
        | Stmt.If r ->
          List.iter (read (where_of s)) (reads_of s);
          List.iter write (Stmt.buffers_written r.then_);
          List.iter write (Stmt.buffers_written r.else_);
          walk r.then_;
          walk r.else_
        | s ->
          List.iter (read (where_of s)) (reads_of s);
          List.iter write (Stmt.buffers_written [ s ]))
      block
  in
  walk k.Kernel.body;
  List.rev !findings

(* ---- check 2: barrier divergence --------------------------------------------- *)

let is_thread_axis = function
  | Axis.Thread_x | Axis.Thread_y | Axis.Thread_z | Axis.Core_id -> true
  | Axis.Block_x | Axis.Block_y | Axis.Block_z | Axis.Task_id | Axis.Cluster_id -> false

let check_barriers (k : Kernel.t) =
  let tainted = Hashtbl.create 8 in
  let expr_tainted e = List.exists (Hashtbl.mem tainted) (Expr.free_vars e) in
  let findings = ref [] in
  let flagged = ref false in
  let rec walk ~in_thread ~divergent block =
    List.iter
      (fun s ->
        match s with
        | Stmt.Let { var; value } | Stmt.Assign { var; value } ->
          if in_thread && (expr_tainted value || Expr.buffers_read value <> [])
          then Hashtbl.replace tainted var ()
        | Stmt.For r ->
          let thread_loop =
            match r.kind with Stmt.Parallel ax -> is_thread_axis ax | _ -> false
          in
          if thread_loop then Hashtbl.replace tainted r.var ();
          let div_bounds =
            in_thread && (expr_tainted r.lo || expr_tainted r.extent)
          in
          walk
            ~in_thread:(in_thread || thread_loop)
            ~divergent:((divergent && in_thread) || div_bounds)
            r.body
        | Stmt.If r ->
          let div = divergent || (in_thread && expr_tainted r.cond) in
          walk ~in_thread ~divergent:div r.then_;
          walk ~in_thread ~divergent:div r.else_
        | Stmt.Sync ->
          if in_thread && divergent && not !flagged then begin
            flagged := true;
            findings :=
              { check = Barrier_divergence;
                diag =
                  Diag.error `Parallelism "sync"
                    "barrier under thread-divergent control flow: threads disagree on \
                     reaching it, so the block deadlocks on real hardware"
                ;
                buffers = [];
                sites = []
              }
              :: !findings
          end
        | _ -> ())
      block
  in
  walk ~in_thread:false ~divergent:false k.Kernel.body;
  List.rev !findings

(* ---- check 1: data races ------------------------------------------------------ *)

(* rename every inner variable of the second iteration's expressions *)
let prime = Printf.sprintf "%s'"

let rename_inner inner e =
  List.fold_left (fun e (v, _) -> Expr.subst_var v (Expr.Var (prime v)) e) e inner

let window_disjoint ~c ~r_range ~w1 ~w2 =
  (* footprints start1 = c*t + b1, start2 = c*t' + b2 with t <> t'.
     overlap needs  -(w2-1) <= c*(t - t') + (b1 - b2) <= w1-1; with
     (b1 - b2) in [r.lo, r.hi] the closest approach is |c|.  *)
  let whi = w1 - 1 and wlo = 1 - w2 in
  abs c > max (whi - r_range.Footprint.lo) (r_range.Footprint.hi - wlo)

(* can two distinct iterations of a loop over [ax] see the same storage?
   Local/Fragment are per-thread, Nram/Wram per-core, Shared per-block *)
let shared_across ax (scope : Scope.t) =
  match scope with
  | Scope.Global | Scope.Host -> true
  | Scope.Shared -> is_thread_axis ax
  | Scope.Local | Scope.Fragment | Scope.Nram | Scope.Wram -> false

let check_races (k : Kernel.t) =
  let scope_of =
    let allocs = List.map (fun (b, sc, _, _) -> (b, sc)) (Stmt.allocs k.Kernel.body) in
    fun buf ->
      match List.assoc_opt buf allocs with
      | Some sc -> Some sc
      | None ->
        if List.exists
             (fun (p : Kernel.param) -> p.is_buffer && p.name = buf)
             k.Kernel.params
        then Some Scope.Global
        else None
  in
  let findings = ref [] in
  let flagged_pairs = Hashtbl.create 8 in
  (* per parallel loop: conflicts across its iterations *)
  let rec scan env block =
    List.iter
      (fun s ->
        match s with
        | Stmt.For r ->
          let ext_r = Footprint.range env r.extent in
          let var_range =
            match ext_r with
            | Some e when e.Footprint.hi >= 1 -> Some { Footprint.lo = 0; hi = e.Footprint.hi - 1 }
            | _ -> None
          in
          (match (r.kind, ext_r) with
          | Stmt.Parallel ax, Some e when e.Footprint.hi >= 2 ->
            analyze_loop env ax r.var e.Footprint.hi r.body
          | _ -> ());
          let env' =
            match var_range with Some b -> (r.var, b) :: env | None -> env
          in
          scan env' r.body
        | Stmt.If r ->
          scan env r.then_;
          scan env r.else_
        | _ -> ())
      block
  and analyze_loop env ax t extent body =
    let thread = is_thread_axis ax in
    let private_bufs = List.map (fun (b, _, _, _) -> b) (Stmt.allocs body) in
    let t_range = { Footprint.lo = 0; hi = extent - 1 } in
    let accesses =
      collect ~count_phases:thread ~root_env:((t, t_range) :: env) body
      |> List.filter (fun a ->
             (not (List.mem a.buf private_bufs))
             && match scope_of a.buf with
                | Some sc -> shared_across ax sc
                | None -> false)
    in
    let pair a1 a2 =
      if a1.buf <> a2.buf then ()
      else if a1.kind = `R && a2.kind = `R then ()
      else if thread && a1.phase <> a2.phase then ()
      else begin
        (* iteration 2 gets its own copies of t and of every inner var *)
        let inner2 = (t, t_range) :: a2.inner in
        let start2 = rename_inner inner2 a2.start in
        let width2 = rename_inner inner2 a2.width in
        let guards2 = List.map (rename_inner inner2) a2.guards in
        let all_env =
          env
          @ [ (t, t_range); (prime t, t_range) ]
          @ a1.inner
          @ List.map (fun (v, b) -> (prime v, b)) inner2
        in
        let d =
          Linear.normalize (Expr.Binop (Expr.Sub, a1.start, start2))
        in
        let w1_r = Footprint.range all_env a1.width in
        let w2_r = Footprint.range all_env width2 in
        match (w1_r, w2_r) with
        | Some w1_r, Some w2_r when w1_r.Footprint.hi >= 1 && w2_r.Footprint.hi >= 1 -> (
          let w1 = w1_r.Footprint.hi and w2 = w2_r.Footprint.hi in
          let dd = Linear.decompose d in
          let c1 = Linear.coeff_of_var t dd in
          let c2 = -Linear.coeff_of_var (prime t) dd in
          let residual =
            Linear.recompose (Linear.drop_var t (Linear.drop_var (prime t) dd))
          in
          let proved_disjoint =
            (* equal-stride windows: stride beats the window span *)
            (c1 = c2 && c1 <> 0
            &&
            match Footprint.range all_env residual with
            | Some r_range -> window_disjoint ~c:c1 ~r_range ~w1 ~w2
            | None -> false)
            ||
            (* interval proof on the full difference *)
            match Footprint.range all_env d with
            | Some d_r -> d_r.Footprint.hi < 1 - w2 || d_r.Footprint.lo > w1 - 1
            | None -> false
          in
          if not proved_disjoint then begin
            (* hunt for a concrete colliding pair of iterations *)
            let overlap =
              [ Expr.Binop (Expr.Ne, Expr.Var t, Expr.Var (prime t));
                Expr.Binop
                  (Expr.Ge, d, Expr.Binop (Expr.Sub, Expr.Int 1, width2));
                Expr.Binop
                  (Expr.Le, d, Expr.Binop (Expr.Sub, a1.width, Expr.Int 1))
              ]
            in
            match feasible all_env (overlap @ a1.guards @ guards2) with
            | Some (Some model) ->
              let key = (a1.buf, a1.where, a2.where, a1.phase) in
              if not (Hashtbl.mem flagged_pairs key) then begin
                Hashtbl.replace flagged_pairs key ();
                let w_t = List.assoc_opt t model and w_t' = List.assoc_opt (prime t) model in
                let witness =
                  match (w_t, w_t') with
                  | Some a, Some b ->
                    Printf.sprintf " (e.g. %s=%d vs %s=%d)" t a t b
                  | _ -> ""
                in
                let sites =
                  List.filter_map Fun.id [ store_site k a1.stmt; store_site k a2.stmt ]
                in
                findings :=
                  { check = Race;
                    diag =
                      Diag.error `Parallelism a1.where
                        (Printf.sprintf
                           "data race on %s across %s: %s and %s touch the same element \
                            in the same barrier phase%s"
                           a1.buf (Axis.to_string ax) a1.where a2.where witness);
                    buffers = [ a1.buf ];
                    sites
                  }
                  :: !findings
              end
            | _ -> () (* undecided or disjoint under guards *)
          end)
        | _ -> () (* unbounded width: dynamic validation's job *)
      end
    in
    let rec pairs = function
      | [] -> ()
      | a :: rest ->
        List.iter
          (fun b ->
            if a.kind = `W || b.kind = `W then begin
              pair a b;
              (* the conflict predicate is not symmetric in guards/widths
                 only through renaming; one direction suffices because both
                 orders describe the same element overlap *)
              ()
            end)
          rest;
        pairs rest
    in
    pairs accesses
  in
  scan [] k.Kernel.body;
  List.rev !findings

(* ---- entry point -------------------------------------------------------------- *)

let analyze ?(extents = []) (k : Kernel.t) =
  let findings = check_races k @ check_barriers k @ check_oob ~extents k @ check_uninit k in
  List.iter
    (fun f ->
      Xpiler_obs.Trace.count
        (Printf.sprintf "analyzer.%s.%s"
           (if Diag.is_error f.diag then "error" else "warning")
           (check_name f.check)))
    findings;
  findings
