(** Transcompiler configurations, including the paper's ablations. *)

type t = {
  name : string;
  seed : int;
  annotate : bool;  (** program annotation (Algorithm 1) *)
  use_smt : bool;  (** SMT-based code repairing (Algorithm 3) *)
  self_debugging : bool;  (** retry a failed pass through the LLM once *)
  static_analysis : bool;  (** IR-level static pre-validation before unit tests *)
  tune : bool;  (** hierarchical auto-tuning for performance *)
  mcts : Xpiler_tuning.Mcts.config;
  tuning_prune : bool;
      (** bound-based pruning of intra-pass candidates (lossless; changes
          modelled tuning time, never the chosen schedule) *)
  tuning_warm_start : bool;
      (** warm-start MCTS from the process-global schedule database, so
          repeated translations of similar kernels converge in fewer
          simulations *)
  unit_test_trials : int;
  jobs : int;
      (** domain-pool width for auto-tuning; results are identical for any
          value (deterministic parallel evaluation), only wall-clock changes *)
  trace_level : Xpiler_obs.Tracer.level;
      (** [Off]: no tracing. [Stages]/[Detail]: record a per-translation
          event stream, returned in [Xpiler.outcome.trace]. *)
  trace_sink : string option;
      (** When set (and [trace_level <> Off]), the JSONL journal is also
          written to this path at the end of the translation. *)
}

val default : t
(** Full QiMeng-Xpiler (annotation + SMT repair), tuning off — the accuracy
    experiments' setting. *)

val without_smt : t
(** "QiMeng-Xpiler w/o SMT" ablation. *)

val without_analysis : t
(** Static pre-validation disabled: every pass goes straight to the
    interpreter-based unit test and repairs pay full dynamic localization. *)

val without_smt_self_debug : t
(** "QiMeng-Xpiler w/o SMT + Self-Debugging" ablation. *)

val tuned : t
(** Full system with hierarchical auto-tuning (the performance experiments'
    setting); MCTS budget reduced from the paper's 512 simulations to keep
    simulated runs fast — the knob is exposed. *)

val with_seed : t -> int -> t

val with_jobs : t -> int -> t
(** Set the worker-domain count (clamped to at least 1). *)

val with_trace : ?sink:string -> t -> Xpiler_obs.Tracer.level -> t
(** Enable tracing, optionally journaling to [sink] (a JSONL path). *)
