(** Transcompiler configurations, including the paper's ablations. *)

type escalation = {
  reprompt_parallelism : int;
      (** re-prompt budget when the diagnosed fault class is parallelism *)
  reprompt_memory : int;  (** … memory (scopes, staging, indices) *)
  reprompt_instruction : int;  (** … instruction (intrinsics, bounds, params) *)
  reprompt_damping : float;
      (** per-retry multiplier on the hinted fault classes' rates (a
          fault-specific hint makes exactly those errors less likely) *)
  backoff : float;
      (** virtual-clock backoff base: retry [i] charges an extra
          [45 * backoff^i] modelled seconds of LLM latency *)
  symbolic_fallback : bool;
      (** rung 3: rewrite-only pass application, no LLM in the loop *)
}

val no_escalation : escalation
(** Every rung disabled — the pre-resilience behaviour. *)

val default_escalation : escalation

type t = {
  name : string;
  seed : int;
  annotate : bool;  (** program annotation (Algorithm 1) *)
  use_smt : bool;  (** SMT-based code repairing (Algorithm 3) *)
  self_debugging : bool;  (** legacy flat retry of a failed pass (ablation) *)
  static_analysis : bool;  (** IR-level static pre-validation before unit tests *)
  escalation : escalation;
      (** fault-class escalation ladder for a pass whose output fails
          validation: hinted re-prompt -> SMT repair -> symbolic fallback ->
          skip-with-rollback *)
  rollback : bool;
      (** never commit a kernel that failed validation: when the whole ladder
          is exhausted, roll the pass back to the last validated checkpoint
          and re-plan around it (outcome becomes [Degraded], not broken) *)
  speculative_repair : bool;
      (** evaluate SMT-repair candidate batches speculatively over the
          worker pool ([jobs] wide) with deterministic lowest-index-wins
          selection; off = serial first-pass-wins testing (same winner) *)
  fault_scale : float;
      (** multiplier on the neural oracle's fault-injection rates (1.0 =
          calibrated paper rates); the resilience tests and bench elevate it
          to make validation failures common *)
  tune : bool;  (** hierarchical auto-tuning for performance *)
  mcts : Xpiler_tuning.Mcts.config;
  tuning_prune : bool;
      (** bound-based pruning of intra-pass candidates (lossless; changes
          modelled tuning time, never the chosen schedule) *)
  tuning_warm_start : bool;
      (** warm-start MCTS from the process-global schedule database, so
          repeated translations of similar kernels converge in fewer
          simulations *)
  unit_test_trials : int;
  jobs : int;
      (** domain-pool width for auto-tuning; results are identical for any
          value (deterministic parallel evaluation), only wall-clock changes *)
  trace_level : Xpiler_obs.Tracer.level;
      (** [Off]: no tracing. [Stages]/[Detail]: record a per-translation
          event stream, returned in [Xpiler.outcome.trace]. *)
  trace_sink : string option;
      (** When set (and [trace_level <> Off]), the JSONL journal is also
          written to this path at the end of the translation. *)
  profile : bool;
      (** Bracket the translation with the wall-clock + allocation profiler
          ([Obs.Prof]). Non-deterministic by nature and fully segregated
          from the trace stream: journals stay byte-identical either way. *)
  native_backend : bool;
      (** Execute kernels through the native backend (OCaml-source codegen +
          [Dynlink], disk-cached artifacts) for the duration of the
          translation; any kernel the backend cannot handle falls back to
          the closure engine, so results are identical either way. *)
  store_dir : string option;
      (** When set, the durable knowledge store at this directory is loaded
          into the schedule DB / transposition table / solver memo before
          the translation and kept write-through for its duration (see
          [Xpiler_store.Store]). Persisted entries carry their effect
          receipts, so a cold process warm-starting from disk is observably
          identical to a warm in-process run — results and traces never
          change, only evals-to-target and wall-clock do. The CLI defaults
          this from [$XPILER_STORE_DIR]. *)
}

val default : t
(** Full QiMeng-Xpiler (annotation + SMT repair + the escalation ladder with
    rollback), tuning off — the accuracy experiments' setting. *)

val seed_pipeline : t
(** The pre-resilience pipeline: SMT repair only; when repair gives up the
    broken kernel is committed to pipeline state (the error-accumulation
    failure mode). The baseline arm of the resilience bench. *)

val without_smt : t
(** "QiMeng-Xpiler w/o SMT" ablation (escalation ladder also off). *)

val without_analysis : t
(** Static pre-validation disabled: every pass goes straight to the
    interpreter-based unit test and repairs pay full dynamic localization. *)

val without_smt_self_debug : t
(** "QiMeng-Xpiler w/o SMT + Self-Debugging" ablation. *)

val tuned : t
(** Full system with hierarchical auto-tuning (the performance experiments'
    setting); MCTS budget reduced from the paper's 512 simulations to keep
    simulated runs fast — the knob is exposed. *)

val with_seed : t -> int -> t

val with_jobs : t -> int -> t
(** Set the worker-domain count (clamped to at least 1). *)

val with_trace : ?sink:string -> t -> Xpiler_obs.Tracer.level -> t
(** Enable tracing, optionally journaling to [sink] (a JSONL path). *)

val with_fault_scale : t -> float -> t
(** Scale the simulated LLM's fault-injection rates (clamped to >= 0). *)

val with_max_escalation : t -> int -> t
(** Cap the escalation ladder at rung [0..4]: 0 validate-only, 1 +re-prompt,
    2 +SMT repair, 3 +symbolic fallback, 4 +skip-with-rollback. Never
    enables a mechanism the configuration already disabled ([use_smt],
    [rollback]). *)
