module Summary = Xpiler_obs.Summary

let pct part whole = if whole > 0.0 then 100.0 *. part /. whole else 0.0

let stage_table (s : Summary.t) =
  if s.Summary.stages = [] then None
  else
    Some
      (Report.make ~title:"Stage breakdown (modelled seconds)"
         ~cols:[ "seconds"; "share" ]
         (List.map
            (fun (name, secs) ->
              (name, [ Report.Num secs; Report.Pct (pct secs s.Summary.total_seconds) ]))
            s.Summary.stages
         @ [ ("total", [ Report.Num s.Summary.total_seconds; Report.Pct 100.0 ]) ]))

let span_table (s : Summary.t) =
  if s.Summary.spans = [] then None
  else
    Some
      (Report.make ~title:"Spans" ~cols:[ "count"; "total s" ]
         (List.map
            (fun (name, n, dur) -> (name, [ Report.Count n; Report.Num dur ]))
            s.Summary.spans))

let counter_table (s : Summary.t) =
  if s.Summary.counters = [] then None
  else
    Some
      (Report.make ~title:"Counters" ~cols:[ "total" ]
         (List.map (fun (name, n) -> (name, [ Report.Count n ])) s.Summary.counters))

let histogram_table (s : Summary.t) =
  if s.Summary.histograms = [] then None
  else
    Some
      (Report.make ~title:"Histograms" ~cols:[ "n"; "min"; "mean"; "max" ]
         (List.map
            (fun (name, h) ->
              ( name,
                [ Report.Count h.Summary.n; Report.Num h.Summary.min;
                  Report.Num h.Summary.mean; Report.Num h.Summary.max ] ))
            s.Summary.histograms))

let tables s =
  List.filter_map
    (fun f -> f s)
    [ stage_table; span_table; counter_table; histogram_table ]

let render s = String.concat "\n" (List.map Report.render (tables s))

let render_events events = render (Summary.of_events events)

(* ---- registry snapshots -------------------------------------------------- *)

module Metrics = Xpiler_obs.Metrics
module Prof = Xpiler_obs.Prof

let sample_label (s : Metrics.sample) =
  match s.Metrics.labels with
  | [] -> s.Metrics.name
  | ls ->
    s.Metrics.name ^ "{" ^ String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) ls) ^ "}"

let metrics_tables samples =
  let counters =
    List.filter_map
      (fun s ->
        match s.Metrics.value with
        | Metrics.Vcounter n -> Some (sample_label s, [ Report.Count n ])
        | _ -> None)
      samples
  in
  let gauges =
    List.filter_map
      (fun s ->
        match s.Metrics.value with
        | Metrics.Vgauge v -> Some (sample_label s, [ Report.Num v ])
        | _ -> None)
      samples
  in
  let hists =
    List.filter_map
      (fun s ->
        match s.Metrics.value with
        | Metrics.Vhist h ->
          let mean = if h.Metrics.count > 0 then h.Metrics.sum /. float_of_int h.Metrics.count else 0.0 in
          Some
            ( sample_label s,
              [ Report.Count h.Metrics.count; Report.Num h.Metrics.hmin; Report.Num mean;
                Report.Num (Metrics.hist_quantile h 0.5); Report.Num (Metrics.hist_quantile h 0.99);
                Report.Num h.Metrics.hmax ] )
        | _ -> None)
      samples
  in
  List.filter_map
    (fun (title, cols, rows) -> if rows = [] then None else Some (Report.make ~title ~cols rows))
    [ ("Metric counters", [ "total" ], counters);
      ("Metric gauges", [ "value" ], gauges);
      ("Metric histograms", [ "n"; "min"; "mean"; "p50"; "p99"; "max" ], hists) ]

let render_metrics samples = String.concat "\n" (List.map Report.render (metrics_tables samples))

(* ---- profiler reports ---------------------------------------------------- *)

let prof_tables (r : Prof.report) =
  let stage_rows =
    List.map
      (fun (s : Prof.stage_row) ->
        let ratio = if s.Prof.virtual_s > 0.0 then s.Prof.wall_s /. s.Prof.virtual_s else 0.0 in
        ( s.Prof.stage,
          [ Report.Count s.Prof.charges; Report.Num s.Prof.virtual_s; Report.Num s.Prof.wall_s;
            Report.Ratio ratio ] ))
      r.Prof.stage_rows
  in
  let stage_rows =
    if stage_rows = [] then []
    else begin
      let tv = List.fold_left (fun a (s : Prof.stage_row) -> a +. s.Prof.virtual_s) 0.0 r.Prof.stage_rows in
      let tw = List.fold_left (fun a (s : Prof.stage_row) -> a +. s.Prof.wall_s) 0.0 r.Prof.stage_rows in
      let tc = List.fold_left (fun a (s : Prof.stage_row) -> a + s.Prof.charges) 0 r.Prof.stage_rows in
      stage_rows
      @ [ ( "total",
            [ Report.Count tc; Report.Num tv; Report.Num tw;
              Report.Ratio (if tv > 0.0 then tw /. tv else 0.0) ] ) ]
    end
  in
  let span_rows =
    List.map
      (fun (s : Prof.span_row) ->
        ( s.Prof.span,
          [ Report.Count s.Prof.count; Report.Num s.Prof.wall_s;
            Report.Num (s.Prof.alloc_words /. 1e6); Report.Count s.Prof.majors ] ))
      r.Prof.span_rows
  in
  List.filter_map
    (fun (title, cols, rows) -> if rows = [] then None else Some (Report.make ~title ~cols rows))
    [ ("Wall vs virtual time per stage", [ "charges"; "virtual s"; "wall s"; "wall/virtual" ], stage_rows);
      ("Profiled spans (wall clock)", [ "count"; "wall s"; "alloc Mw"; "majors" ], span_rows) ]

let render_prof r = String.concat "\n" (List.map Report.render (prof_tables r))
