module Summary = Xpiler_obs.Summary

let pct part whole = if whole > 0.0 then 100.0 *. part /. whole else 0.0

let stage_table (s : Summary.t) =
  if s.Summary.stages = [] then None
  else
    Some
      (Report.make ~title:"Stage breakdown (modelled seconds)"
         ~cols:[ "seconds"; "share" ]
         (List.map
            (fun (name, secs) ->
              (name, [ Report.Num secs; Report.Pct (pct secs s.Summary.total_seconds) ]))
            s.Summary.stages
         @ [ ("total", [ Report.Num s.Summary.total_seconds; Report.Pct 100.0 ]) ]))

let span_table (s : Summary.t) =
  if s.Summary.spans = [] then None
  else
    Some
      (Report.make ~title:"Spans" ~cols:[ "count"; "total s" ]
         (List.map
            (fun (name, n, dur) -> (name, [ Report.Count n; Report.Num dur ]))
            s.Summary.spans))

let counter_table (s : Summary.t) =
  if s.Summary.counters = [] then None
  else
    Some
      (Report.make ~title:"Counters" ~cols:[ "total" ]
         (List.map (fun (name, n) -> (name, [ Report.Count n ])) s.Summary.counters))

let histogram_table (s : Summary.t) =
  if s.Summary.histograms = [] then None
  else
    Some
      (Report.make ~title:"Histograms" ~cols:[ "n"; "min"; "mean"; "max" ]
         (List.map
            (fun (name, h) ->
              ( name,
                [ Report.Count h.Summary.n; Report.Num h.Summary.min;
                  Report.Num h.Summary.mean; Report.Num h.Summary.max ] ))
            s.Summary.histograms))

let tables s =
  List.filter_map
    (fun f -> f s)
    [ stage_table; span_table; counter_table; histogram_table ]

let render s = String.concat "\n" (List.map Report.render (tables s))

let render_events events = render (Summary.of_events events)
