type cell =
  | Pct of float
  | Ratio of float
  | Num of float
  | Count of int
  | Text of string
  | Pair of float * float

type t = {
  title : string;
  col_headers : string list;
  rows : (string * cell list) list;
}

let make ~title ~cols rows = { title; col_headers = cols; rows }

let cell_to_string = function
  | Pct p -> Printf.sprintf "%.1f" p
  | Ratio r -> Printf.sprintf "%.2fx" r
  | Num f -> Printf.sprintf "%.3g" f
  | Count n -> string_of_int n
  | Text s -> s
  | Pair (a, b) -> Printf.sprintf "%.1f / %.1f" a b

let render t =
  let all_rows =
    ("", List.map (fun h -> h) t.col_headers)
    :: List.map (fun (label, cells) -> (label, List.map cell_to_string cells)) t.rows
  in
  let ncols = List.fold_left (fun m (_, cs) -> max m (List.length cs)) 0 all_rows in
  let width i =
    List.fold_left
      (fun m (label, cs) ->
        let s = if i = -1 then label else Option.value ~default:"" (List.nth_opt cs i) in
        max m (String.length s))
      0 all_rows
  in
  let label_w = width (-1) in
  let col_ws = List.init ncols width in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "=== %s ===\n" t.title);
  List.iter
    (fun (label, cs) ->
      Buffer.add_string buf (Printf.sprintf "%-*s" label_w label);
      List.iteri
        (fun i s ->
          Buffer.add_string buf
            (Printf.sprintf " | %*s" (List.nth col_ws i) s))
        cs;
      Buffer.add_char buf '\n')
    all_rows;
  Buffer.contents buf

let csv_escape s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let to_csv t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (String.concat "," ("" :: List.map csv_escape t.col_headers));
  Buffer.add_char buf '\n';
  List.iter
    (fun (label, cells) ->
      Buffer.add_string buf
        (String.concat ","
           (csv_escape label :: List.map (fun c -> csv_escape (cell_to_string c)) cells));
      Buffer.add_char buf '\n')
    t.rows;
  Buffer.contents buf

let save_csv ?(dir = "results") ~name t =
  Xpiler_util.Fsx.mkdir_p dir;
  let path = Filename.concat dir (name ^ ".csv") in
  let oc = open_out path in
  output_string oc (to_csv t);
  close_out oc;
  path
