(** Rendering of trace summaries through [Report].

    This is the in-memory sink of the observability layer: an event stream
    (live from a tracer, or replayed from a JSONL journal by
    [xpiler trace]) aggregates into [Xpiler_obs.Summary] and renders here
    as the same aligned tables / CSV machinery the benchmark harness
    uses. *)

val tables : Xpiler_obs.Summary.t -> Report.t list
(** Stage breakdown, span totals, counters and histograms — empty sections
    are omitted. *)

val render : Xpiler_obs.Summary.t -> string
(** All tables concatenated, ready to print. *)

val render_events : Xpiler_obs.Event.t list -> string

val metrics_tables : Xpiler_obs.Metrics.sample list -> Report.t list
(** Registry snapshot rendered as counter / gauge / histogram tables
    (histograms get bucket-estimated p50/p99); empty sections omitted. *)

val render_metrics : Xpiler_obs.Metrics.sample list -> string

val prof_tables : Xpiler_obs.Prof.report -> Report.t list
(** Wall-vs-virtual seconds per stage (with the wall/virtual ratio) and
    profiled span costs (wall seconds, allocated megawords, major GCs). *)

val render_prof : Xpiler_obs.Prof.report -> string
