(** Rendering of trace summaries through [Report].

    This is the in-memory sink of the observability layer: an event stream
    (live from a tracer, or replayed from a JSONL journal by
    [xpiler trace]) aggregates into [Xpiler_obs.Summary] and renders here
    as the same aligned tables / CSV machinery the benchmark harness
    uses. *)

val tables : Xpiler_obs.Summary.t -> Report.t list
(** Stage breakdown, span totals, counters and histograms — empty sections
    are omitted. *)

val render : Xpiler_obs.Summary.t -> string
(** All tables concatenated, ready to print. *)

val render_events : Xpiler_obs.Event.t list -> string
