(** Structured attempt ledger for the resilient pipeline.

    One entry per attempted pass, recording how far up the fault-class
    escalation ladder the pipeline had to climb (hinted re-prompt -> SMT
    repair -> symbolic fallback -> skip-with-rollback), which fault classes
    were diagnosed, how many LLM attempts were spent and how much virtual
    time was charged. Surfaced on [Xpiler.outcome.ledger], as [Obs.Trace]
    instants (["pass.ledger"]) and as a [Report] table. *)

module Pass = Xpiler_passes.Pass
module Fault = Xpiler_neural.Fault

type rung = Validate | Reprompt | Smt | Symbolic | Skip

val rung_index : rung -> int
(** Position on the ladder, [0..4]; higher means more escalation. *)

val rung_name : rung -> string

type result =
  | Applied  (** valid on the first attempt *)
  | Applied_reprompt  (** a hinted re-prompt produced a valid kernel *)
  | Repaired  (** SMT repair fixed the faulty kernel *)
  | Symbolic_applied  (** rewrite-only application, no LLM in the loop *)
  | Skipped  (** rolled back to the checkpoint; pass left out of the plan *)
  | Committed_broken  (** rollback off: the invalid kernel entered the state *)
  | Not_applicable of string

val result_name : result -> string

type entry = {
  spec : Pass.spec;
  attempts : int;  (** LLM calls spent on this pass, re-prompts included *)
  rung : rung;  (** highest escalation rung reached *)
  fault_classes : Fault.category list;  (** distinct classes diagnosed, in order *)
  time_charged : float;  (** virtual-clock seconds charged during the pass *)
  result : result;
}

val escalated : entry list -> entry list
(** Entries that climbed past plain validation. *)

val trace_attrs : entry -> (string * string) list
(** The attribute set emitted on the ["pass.ledger"] trace instant. *)

val report : entry list -> Report.t
(** The ledger as an aligned table (same machinery as the bench reports). *)
