type t = {
  name : string;
  seed : int;
  annotate : bool;
  use_smt : bool;
  self_debugging : bool;
  static_analysis : bool;
  tune : bool;
  mcts : Xpiler_tuning.Mcts.config;
  tuning_prune : bool;
  tuning_warm_start : bool;
  unit_test_trials : int;
  jobs : int;
  trace_level : Xpiler_obs.Tracer.level;
  trace_sink : string option;
}

let default =
  { name = "qimeng-xpiler";
    seed = 20250706;
    annotate = true;
    use_smt = true;
    self_debugging = false;
    static_analysis = true;
    tune = false;
    mcts = { Xpiler_tuning.Mcts.default_config with simulations = 48; max_depth = 6 };
    tuning_prune = true;
    tuning_warm_start = true;
    unit_test_trials = 2;
    jobs = 1;
    trace_level = Xpiler_obs.Tracer.Off;
    trace_sink = None
  }

let without_smt = { default with name = "qimeng-xpiler-wo-smt"; use_smt = false }

let without_analysis =
  { default with name = "qimeng-xpiler-wo-analysis"; static_analysis = false }

let without_smt_self_debug =
  { default with name = "qimeng-xpiler-wo-smt+self-debug"; use_smt = false; self_debugging = true }

let tuned = { default with name = "qimeng-xpiler-tuned"; tune = true }

let with_seed t seed = { t with seed }
let with_jobs t jobs = { t with jobs = max 1 jobs }
let with_trace ?sink t level = { t with trace_level = level; trace_sink = sink }
