type escalation = {
  reprompt_parallelism : int;
  reprompt_memory : int;
  reprompt_instruction : int;
  reprompt_damping : float;
  backoff : float;
  symbolic_fallback : bool;
}

let no_escalation =
  { reprompt_parallelism = 0;
    reprompt_memory = 0;
    reprompt_instruction = 0;
    reprompt_damping = 1.0;
    backoff = 1.0;
    symbolic_fallback = false
  }

(* parallelism errors are the most systematic (a foreign-platform habit the
   hint rarely dislodges), so they get the smallest re-prompt budget *)
let default_escalation =
  { reprompt_parallelism = 1;
    reprompt_memory = 2;
    reprompt_instruction = 2;
    reprompt_damping = 0.35;
    backoff = 1.6;
    symbolic_fallback = true
  }

type t = {
  name : string;
  seed : int;
  annotate : bool;
  use_smt : bool;
  self_debugging : bool;
  static_analysis : bool;
  escalation : escalation;
  rollback : bool;
  speculative_repair : bool;
  fault_scale : float;
  tune : bool;
  mcts : Xpiler_tuning.Mcts.config;
  tuning_prune : bool;
  tuning_warm_start : bool;
  unit_test_trials : int;
  jobs : int;
  trace_level : Xpiler_obs.Tracer.level;
  trace_sink : string option;
  profile : bool;
  native_backend : bool;
  store_dir : string option;
}

let default =
  { name = "qimeng-xpiler";
    seed = 20250706;
    annotate = true;
    use_smt = true;
    self_debugging = false;
    static_analysis = true;
    escalation = default_escalation;
    rollback = true;
    speculative_repair = true;
    fault_scale = 1.0;
    tune = false;
    mcts = { Xpiler_tuning.Mcts.default_config with simulations = 48; max_depth = 6 };
    tuning_prune = true;
    tuning_warm_start = true;
    unit_test_trials = 2;
    jobs = 1;
    trace_level = Xpiler_obs.Tracer.Off;
    trace_sink = None;
    profile = false;
    native_backend = false;
    store_dir = None
  }

(* the pre-resilience pipeline: SMT repair only, a Gave_up commits the broken
   kernel (no rollback, no re-prompting, no symbolic fallback) — the bench
   baseline for the escalation ladder *)
let seed_pipeline =
  { default with
    name = "qimeng-xpiler-seed";
    escalation = no_escalation;
    rollback = false;
    speculative_repair = false
  }

let without_smt =
  { seed_pipeline with name = "qimeng-xpiler-wo-smt"; use_smt = false }

let without_analysis =
  { default with name = "qimeng-xpiler-wo-analysis"; static_analysis = false }

let without_smt_self_debug =
  { seed_pipeline with
    name = "qimeng-xpiler-wo-smt+self-debug";
    use_smt = false;
    self_debugging = true
  }

let tuned = { default with name = "qimeng-xpiler-tuned"; tune = true }

let with_seed t seed = { t with seed }
let with_jobs t jobs = { t with jobs = max 1 jobs }
let with_trace ?sink t level = { t with trace_level = level; trace_sink = sink }
let with_fault_scale t fault_scale = { t with fault_scale = Float.max 0.0 fault_scale }

(* CLI mapping: 0 = validate only, 1 = +re-prompt, 2 = +SMT repair,
   3 = +symbolic fallback, 4 = +skip-with-rollback (the full ladder) *)
let with_max_escalation t rung =
  let rung = max 0 (min 4 rung) in
  let esc = if rung >= 1 then default_escalation else no_escalation in
  { t with
    escalation = { esc with symbolic_fallback = rung >= 3 };
    use_smt = t.use_smt && rung >= 2;
    rollback = t.rollback && rung >= 4
  }
