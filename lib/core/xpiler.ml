open Xpiler_ir
open Xpiler_machine
open Xpiler_ops
open Xpiler_neural
module Pass = Xpiler_passes.Pass
module Vclock = Xpiler_util.Vclock
module Rng = Xpiler_util.Rng
module Obs = Xpiler_obs

type status = Success | Degraded | Compile_error of string | Computation_error of string

type outcome = {
  status : status;
  kernel : Kernel.t option;
  target_text : string option;
  specs_applied : Pass.spec list;
  skipped_passes : Pass.spec list;
  faults_seen : Fault.injected list;
  residual_faults : Fault.injected list;
  repairs_attempted : int;
  repairs_succeeded : int;
  ledger : Ledger.entry list;
  clock : Vclock.t;
  throughput : float option;
  trace : Obs.Event.t list;
}

let status_to_string = function
  | Success -> "success"
  | Degraded -> "degraded"
  | Compile_error m -> "compile error: " ^ m
  | Computation_error m -> "computation error: " ^ m

(* label-safe status class: the error message is unbounded-cardinality, the
   class is not *)
let status_class = function
  | Success -> "success"
  | Degraded -> "degraded"
  | Compile_error _ -> "compile-error"
  | Computation_error _ -> "computation-error"

(* Stable registry metrics: everything below is counted on the master domain
   and is a pure function of workload, configuration and seed. Escalation
   counters are pre-registered at zero for every rung so `xpiler metrics`
   always shows the full ladder. *)
let m_escalation =
  let mk rung =
    ( rung,
      Obs.Metrics.counter ~help:"passes whose escalation ended at this rung"
        ~labels:[ ("rung", Ledger.rung_name rung) ] "xpiler_escalations_total" )
  in
  List.map mk [ Ledger.Validate; Ledger.Reprompt; Ledger.Smt; Ledger.Symbolic; Ledger.Skip ]

let m_escalation_for rung = List.assq rung m_escalation

let m_pass =
  let mk result =
    ( result,
      Obs.Metrics.counter ~help:"pass applications by outcome" ~labels:[ ("result", result) ]
        "xpiler_passes_total" )
  in
  List.map mk [ "applied"; "inapplicable"; "broken"; "skipped" ]

let m_pass_for result = List.assoc result m_pass

let m_translation status =
  Obs.Metrics.counter ~help:"translations by final status" ~labels:[ ("status", status) ]
    "xpiler_translations_total"

let m_translations =
  List.map (fun s -> (s, m_translation s)) [ "success"; "degraded"; "compile-error"; "computation-error" ]

let accepted = function Success | Degraded -> true | Compile_error _ | Computation_error _ -> false

let strip_annots (k : Kernel.t) =
  let rec go block =
    List.concat_map
      (fun s ->
        match s with
        | Stmt.Annot _ -> []
        | Stmt.For r -> [ Stmt.For { r with body = go r.body } ]
        | Stmt.If r -> [ Stmt.If { r with then_ = go r.then_; else_ = go r.else_ } ]
        | s -> [ s ])
      block
  in
  Kernel.with_body k (go k.Kernel.body)

(* program size and data-dependent control flow inflate LLM fault rates —
   the paper's explanation for the Deformable Attention failure case *)
let complexity_multiplier (k : Kernel.t) =
  let stmts = Stmt.count_stmts k.Kernel.body in
  let tainted = Hashtbl.create 8 in
  let expr_tainted e =
    Expr.buffers_read e <> [] || List.exists (Hashtbl.mem tainted) (Expr.free_vars e)
  in
  let dyn_ifs = ref 0 in
  Stmt.iter
    (fun s ->
      match s with
      | Stmt.Let { var; value } | Stmt.Assign { var; value } ->
        if expr_tainted value then Hashtbl.replace tainted var ()
      | Stmt.If r -> if expr_tainted r.cond then incr dyn_ifs
      | _ -> ())
    k.Kernel.body;
  let size = Float.max 0.8 (Float.min 3.0 (sqrt (float_of_int stmts /. 12.0))) in
  let control = 1.0 +. (1.0 *. Float.min 4.0 (float_of_int !dyn_ifs)) in
  size *. control

(* hot-loop accumulators are kept in reverse and finalized once in
   [finish] — appending with [@] per pass made the loop quadratic *)
type state = {
  mutable kernel : Kernel.t;
  mutable specs_rev : Pass.spec list;
  mutable skipped_rev : Pass.spec list;
  mutable faults_seen_rev : Fault.injected list;
  mutable active_faults : Fault.injected list;
  mutable repairs_attempted : int;
  mutable repairs_succeeded : int;
  mutable ledger_rev : Ledger.entry list;
}

type pass_result = Applied | Inapplicable of string | Broken | Skipped

let case_seed (config : Config.t) src dst (op : Opdef.t) shape =
  Hashtbl.hash
    ( config.Config.seed,
      Platform.id_to_string src,
      Platform.id_to_string dst,
      op.Opdef.name,
      shape )

let shape_to_string shape =
  String.concat "," (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) shape)

let transcompile ?(config = Config.default) ~src ~dst ~op ~shape () =
  (* durable knowledge store: load-and-attach once per process (idempotent
     per directory) so the schedule DB / transposition table / solver memo
     warm-start from prior runs and write through from this one. Purely a
     time optimization: persisted entries replay their effect receipts, so
     results and traces are unchanged. A store that cannot be opened is a
     warning, not a failure — the translation proceeds cold. *)
  (match config.Config.store_dir with
  | Some dir -> (
    match Xpiler_store.Store.ensure ~dir () with
    | Ok _ -> ()
    | Error m -> Printf.eprintf "warning: knowledge store disabled: %s\n%!" m)
  | None -> ());
  let clock = Vclock.create () in
  (* tracing: a tracer of our own when the config asks for one, else reuse
     an ambient tracer a caller (e.g. the bench harness) installed; either
     way the Vclock observer keeps span timestamps and stage totals in
     lock-step (single source of timing truth) *)
  let prev_ambient = Obs.Trace.current () in
  let owns_tracer, tracer =
    match config.Config.trace_level with
    | Obs.Tracer.Off -> (false, prev_ambient)
    | level -> (true, Some (Obs.Tracer.create ~level ()))
  in
  let restored = ref false in
  let restore_ambient () =
    if owns_tracer && not !restored then begin
      restored := true;
      match prev_ambient with
      | Some p -> Obs.Trace.install p
      | None -> Obs.Trace.uninstall ()
    end
  in
  (* optional wall-clock profiling: enabled for the duration of this
     translation; its stream never touches the tracer, so journals stay
     byte-identical with profiling on or off *)
  let prof_on = config.Config.profile in
  if prof_on then Obs.Prof.enable ();
  let observe_stage stage s =
    if prof_on then Obs.Prof.stage_charge (Vclock.stage_name stage) s
  in
  (match tracer with
  | Some t ->
    if owns_tracer then Obs.Trace.install t;
    Vclock.set_observer clock (fun stage s ->
        Obs.Tracer.stage_charge t (Vclock.stage_name stage) s;
        observe_stage stage s)
  | None -> if prof_on then Vclock.set_observer clock observe_stage);
  (* native kernel backend for the duration of this translation: enable-only
     (never disable an ambient opt-in), restored on every exit path. The
     backend is fall-back-transparent, so outcomes are identical either way *)
  let native_was = Native.enabled () in
  Native.set_enabled (native_was || config.Config.native_backend);
  (* whatever happens below, never leak our tracer (or a running profiler,
     or the native-backend toggle) into the caller *)
  Fun.protect
    ~finally:(fun () ->
      Native.set_enabled native_was;
      restore_ambient ();
      if prof_on then Obs.Prof.disable ())
  @@ fun () ->
  let root_span =
    Option.map
      (fun t ->
        Obs.Tracer.span_begin t ~cat:"translate"
          ~attrs:
            [ ("op", op.Opdef.name);
              ("src", Platform.id_to_string src);
              ("dst", Platform.id_to_string dst);
              ("shape", shape_to_string shape);
              ("seed", string_of_int config.Config.seed);
              ("config", config.Config.name) ]
          ("translate:" ^ op.Opdef.name))
      tracer
  in
  (* seal the trace and restore the caller's tracing state *)
  let finish_trace outcome =
    Obs.Metrics.inc (List.assoc (status_class outcome.status) m_translations);
    (match tracer with
    | Some t ->
      Obs.Tracer.instant t
        ~attrs:[ ("status", status_to_string outcome.status) ]
        "translate.status";
      (match root_span with Some s -> Obs.Tracer.span_end t s | None -> ());
      Vclock.clear_observer clock
    | None -> if prof_on then Vclock.clear_observer clock);
    if prof_on then Obs.Prof.disable ();
    restore_ambient ();
    match (owns_tracer, tracer) with
    | true, Some t ->
      let events = Obs.Tracer.events t in
      (match config.Config.trace_sink with
      | Some path -> Obs.Journal.write_file path events
      | None -> ());
      { outcome with trace = events }
    | _ -> outcome
  in
  let buffer_sizes =
    List.map (fun (b : Opdef.buffer_spec) -> (b.buf_name, b.size shape)) op.Opdef.buffers
  in
  let llm = Llm.create ~seed:(case_seed config src dst op shape) ~clock () in
  let retry_rng = Rng.create (case_seed config src dst op shape + 17) in
  let target = Platform.of_id dst in
  let src_kernel = Idiom.source src op shape in
  (* program annotation (Algorithm 1): one LLM pass + BM25 retrieval *)
  let annotated_kernel =
    if config.Config.annotate then
      Obs.Trace.span ~cat:"phase" "annotate" (fun () ->
          Vclock.charge clock Vclock.Annotation
            (150.0 +. (5.0 *. float_of_int (Stmt.count_stmts src_kernel.Kernel.body)));
          Annotate.annotate ~target:dst src_kernel)
    else src_kernel
  in
  let base_profile =
    Profile.pass_level ~annotated:config.Config.annotate
    |> (fun p -> Profile.scale p (sqrt (Profile.direction_difficulty ~src ~dst)))
    |> (fun p -> Profile.scale p (complexity_multiplier src_kernel))
    |> fun p -> Profile.scale p config.Config.fault_scale
  in
  let st =
    { kernel = strip_annots annotated_kernel;
      specs_rev = [];
      skipped_rev = [];
      faults_seen_rev = [];
      active_faults = [];
      repairs_attempted = 0;
      repairs_succeeded = 0;
      ledger_rev = []
    }
  in
  let compile_ok k = Checker.compile target k = Ok () in
  let unit_ok k =
    Vclock.charge clock Vclock.Unit_test 45.0;
    Unit_test.check ~trials:config.Config.unit_test_trials op shape k = Unit_test.Pass
  in
  (* per-pass validation: a static pre-validation pass first (a diagnosed
     program never reaches the interpreter, and its findings seed the
     repairer's localization), then the unit test (the paper's flow).
     Platform compilation is checked once on the final program, since
     intermediate states legitimately mix source and target features *)
  let static_diags = ref [] in
  let valid k =
    static_diags := [];
    if config.Config.static_analysis then begin
      Vclock.charge clock Vclock.Static_analysis
        (2.0 +. (0.05 *. float_of_int (Stmt.count_stmts k.Kernel.body)));
      match
        Xpiler_analysis.Analyzer.errors
          (Xpiler_analysis.Analyzer.analyze ~extents:buffer_sizes k)
      with
      | [] -> unit_ok k
      | findings ->
        (* short-circuit: no interpreter run for a statically-diagnosed
           program — reading the report is orders of magnitude cheaper *)
        static_diags := findings;
        false
    end
    else unit_ok k
  in
  (* one LLM-assisted pass with validation; a failed validation climbs the
     fault-class escalation ladder instead of the old single flat retry:
       rung 1  re-prompt with a fault-specific hint (per-class budgets,
               virtual-clock backoff)
       rung 2  SMT-based code repairing (Algorithm 3)
       rung 3  symbolic fallback: rewrite-only pass application, no LLM
       rung 4  skip-with-rollback: restore the last validated checkpoint
               and re-plan the remaining sequence around the skipped pass
     With [rollback] off the ladder bottoms out the old way: the broken
     kernel is committed and the pipeline ends [Broken]. *)
  let esc = config.Config.escalation in
  let run_pass_untraced spec =
    let checkpoint = st.kernel in
    let t0 = Vclock.elapsed clock in
    let attempts = ref 0 in
    let fault_classes = ref [] in
    let rung = ref Ledger.Validate in
    let reach r = if Ledger.rung_index r > Ledger.rung_index !rung then rung := r in
    let note_faults faults =
      st.faults_seen_rev <- List.rev_append faults st.faults_seen_rev;
      List.iter
        (fun (f : Fault.injected) ->
          if not (List.mem f.Fault.category !fault_classes) then
            fault_classes := !fault_classes @ [ f.Fault.category ])
        faults
    in
    let record result pass_result =
      let entry =
        { Ledger.spec;
          attempts = !attempts;
          rung = !rung;
          fault_classes = !fault_classes;
          time_charged = Vclock.elapsed clock -. t0;
          result
        }
      in
      st.ledger_rev <- entry :: st.ledger_rev;
      Obs.Metrics.inc (m_escalation_for !rung);
      Obs.Trace.instant ~attrs:(Ledger.trace_attrs entry) "pass.ledger";
      pass_result
    in
    let apply_ok k result =
      st.kernel <- k;
      st.specs_rev <- spec :: st.specs_rev;
      st.active_faults <- [];
      record result Applied
    in
    let commit_broken k live_faults =
      st.kernel <- k;
      st.specs_rev <- spec :: st.specs_rev;
      st.active_faults <- st.active_faults @ live_faults;
      record Ledger.Committed_broken Broken
    in
    let reprompt_budget () =
      List.fold_left
        (fun m c ->
          max m
            (match c with
            | Fault.Parallelism -> esc.Config.reprompt_parallelism
            | Fault.Memory -> esc.Config.reprompt_memory
            | Fault.Instruction -> esc.Config.reprompt_instruction))
        0 !fault_classes
    in
    (* rung 4: never commit a checker-rejected kernel — roll back to the
       checkpoint ([st.kernel] was last assigned a validated kernel, so
       leaving it untouched IS the rollback) and skip the pass *)
    let rec try_skip k live_faults =
      if config.Config.rollback then begin
        reach Ledger.Skip;
        Obs.Trace.count "escalate.skip";
        st.skipped_rev <- spec :: st.skipped_rev;
        record Ledger.Skipped Skipped
      end
      else commit_broken k live_faults
    (* rung 3: the symbolic rewrite applied to the checkpoint — slower in the
       modelled clock and inflexible, but it cannot hallucinate *)
    and try_symbolic k live_faults =
      if not esc.Config.symbolic_fallback then try_skip k live_faults
      else begin
        reach Ledger.Symbolic;
        Obs.Trace.count "escalate.symbolic";
        match Pass.apply ~platform:target spec checkpoint with
        | Error _ -> try_skip k live_faults
        | Ok k_sym ->
          Vclock.charge clock Vclock.Symbolic_fallback
            (20.0 +. (2.0 *. float_of_int (Stmt.count_stmts k_sym.Kernel.body)));
          if valid k_sym then apply_ok k_sym Ledger.Symbolic_applied
          else try_skip k live_faults
      end
    (* legacy Self-Debugging (the w/o-SMT ablation): one flat resample with
       no hint — most retries reproduce the same faulty output *)
    and legacy_self_debug k live_faults =
      if Rng.bernoulli retry_rng 0.85 then commit_broken k live_faults
      else begin
        match Llm.apply_pass llm ~profile:base_profile ~target ~prompt:(prompt ()) spec checkpoint with
        | Error m -> record (Ledger.Not_applicable m) (Inapplicable m)
        | Ok (k'', faults') ->
          incr attempts;
          note_faults faults';
          if valid k'' then apply_ok k'' Ledger.Applied_reprompt
          else if config.Config.rollback then try_symbolic k'' faults'
          else commit_broken k'' (live_faults @ faults')
      end
    (* rung 2 *)
    and try_smt k live_faults =
      if not config.Config.use_smt then
        if config.Config.self_debugging then legacy_self_debug k live_faults
        else try_symbolic k live_faults
      else begin
        reach Ledger.Smt;
        st.repairs_attempted <- st.repairs_attempted + 1;
        match
          Xpiler_repair.Repairer.repair ~static:!static_diags ~clock
            ~speculative:config.Config.speculative_repair ~jobs:config.Config.jobs
            ~platform:target ~op ~shape k
        with
        | Xpiler_repair.Repairer.Repaired { kernel; _ } ->
          st.repairs_succeeded <- st.repairs_succeeded + 1;
          apply_ok kernel Ledger.Repaired
        | Xpiler_repair.Repairer.Gave_up _ -> try_symbolic k live_faults
      end
    (* rung 1: the re-prompt includes a hint naming the diagnosed fault
       classes, which damps exactly those classes' rates; each retry waits
       out an escalating virtual-clock backoff on top of the call itself *)
    and reprompt k live_faults i =
      if i > reprompt_budget () then try_smt k live_faults
      else begin
        reach Ledger.Reprompt;
        Obs.Trace.count "escalate.reprompt";
        Vclock.charge clock Vclock.Llm_transform
          (45.0 *. (esc.Config.backoff ** float_of_int i));
        let hinted = Meta_prompt.with_hints ~categories:!fault_classes (prompt ()) in
        let damped =
          Profile.damp base_profile !fault_classes
            (esc.Config.reprompt_damping ** float_of_int i)
        in
        match Llm.apply_pass llm ~profile:damped ~target ~prompt:hinted spec checkpoint with
        | Error m -> record (Ledger.Not_applicable m) (Inapplicable m)
        | Ok (k', faults') ->
          incr attempts;
          note_faults faults';
          if valid k' then apply_ok k' Ledger.Applied_reprompt
          else reprompt k' faults' (i + 1)
      end
    and prompt =
      let p = lazy (Meta_prompt.build ~target:dst spec checkpoint) in
      fun () -> Lazy.force p
    in
    match Llm.apply_pass llm ~profile:base_profile ~target ~prompt:(prompt ()) spec checkpoint with
    | Error m -> record (Ledger.Not_applicable m) (Inapplicable m)
    | Ok (k', faults) ->
      incr attempts;
      note_faults faults;
      if valid k' then apply_ok k' Ledger.Applied else reprompt k' faults 1
  in
  let run_pass spec =
    Obs.Trace.span ~cat:"pass" (Pass.describe spec) (fun () ->
        let r = run_pass_untraced spec in
        let cls =
          match r with
          | Applied -> "applied"
          | Inapplicable _ -> "inapplicable"
          | Broken -> "broken"
          | Skipped -> "skipped"
        in
        Obs.Metrics.inc (m_pass_for cls);
        Obs.Trace.count ("pass." ^ cls);
        r)
  in
  (* phase 1: sequentialize when the source is parallel *)
  let recovery_ok =
    if Stmt.axes_used st.kernel.Kernel.body <> [] then run_pass Pass.Loop_recovery
    else Applied
  in
  let finish () =
    finish_trace
    @@ Obs.Trace.span ~cat:"phase" "finalize"
    @@ fun () ->
    let k = st.kernel in
    let status =
      if not (compile_ok k) then
        Compile_error
          (match Checker.compile target k with
          | Error (e :: _) -> Checker.error_to_string e
          | _ -> "unknown")
      else if not (unit_ok k) then
        Computation_error
          (match Unit_test.check ~trials:1 op shape k with
          | Unit_test.Fail m -> m
          | Unit_test.Pass -> "flaky")
      else if st.skipped_rev <> [] then Degraded
      else Success
    in
    (* hierarchical auto-tuning on accepted translations (a degraded kernel
       still computes correctly, so it is tuned like any other) *)
    let k, throughput =
      if accepted status && config.Config.tune then begin
        let mcts_config =
          { config.Config.mcts with Xpiler_tuning.Mcts.prune = config.Config.tuning_prune }
        in
        let db =
          if config.Config.tuning_warm_start then Some Xpiler_tuning.Schedule_db.default
          else None
        in
        let result =
          Xpiler_tuning.Mcts.search ~config:mcts_config ~clock ~buffer_sizes
            ~jobs:config.Config.jobs ?db ~platform:target k
        in
        let tuned = result.Xpiler_tuning.Mcts.best_kernel in
        if unit_ok tuned then (tuned, Some result.Xpiler_tuning.Mcts.best_reward)
        else (k, Some (Costmodel.throughput target k ~shapes:[]))
      end
      else if accepted status then (k, Some (Costmodel.throughput target k ~shapes:[]))
      else (k, None)
    in
    { status;
      kernel = Some k;
      target_text = Some (Xpiler_lang.Codegen.emit (Xpiler_lang.Dialect.of_platform dst) k);
      specs_applied = List.rev st.specs_rev;
      skipped_passes = List.rev st.skipped_rev;
      faults_seen = List.rev st.faults_seen_rev;
      residual_faults = st.active_faults;
      repairs_attempted = st.repairs_attempted;
      repairs_succeeded = st.repairs_succeeded;
      ledger = List.rev st.ledger_rev;
      clock;
      throughput;
      trace = []
    }
  in
  match recovery_ok with
  (* a skipped recovery leaves the (validated) source kernel in place: no
     phase below can run on a still-parallel program, so finalize — the
     outcome is Degraded or a compile error, never a committed-broken state *)
  | Broken | Inapplicable _ | Skipped -> finish ()
  | Applied -> (
    (* phase 1.5: canonicalize split elementwise loops back into flat loops *)
    let rec normalize () =
      match st.kernel.Kernel.body with
      | [ Stmt.For { var; kind = Stmt.Serial;
                     body = [ Stmt.For { kind = Stmt.Serial; body = [ Stmt.Store _ ]; _ } ]; _ } ]
        -> (
        match run_pass (Pass.Loop_fuse { var }) with
        | Applied -> normalize ()
        | Inapplicable _ | Broken | Skipped -> ())
      | _ -> ()
    in
    normalize ();
    (* phase 1.75: strip source-platform specialization the target lacks —
       restore loops from foreign intrinsics, move foreign memory spaces to
       plain local storage *)
    let despecialize () =
      (* source intrinsics are restored to loops even when the target has an
         equivalent: operand staging differs per platform, so the target
         pipeline re-tensorizes from scratch *)
      let detens =
        if Stmt.intrinsics st.kernel.Kernel.body <> [] then [ Pass.Detensorize ] else []
      in
      let rec run = function
        | [] -> Applied
        | spec :: rest -> (
          match run_pass spec with
          (* a skipped fix rolls back and the plan continues around it *)
          | Applied | Skipped -> run rest
          | (Inapplicable _ | Broken) as r -> r)
      in
      match run detens with
      | (Inapplicable _ | Broken) as r -> r
      | Skipped -> assert false (* [run] never returns Skipped *)
      | Applied ->
        (* drop source-side staging (the target pipeline re-stages), falling
           back to a local-scratch rescope for genuine temporaries *)
        let fixes =
          Stmt.allocs st.kernel.Kernel.body
          |> List.filter_map (fun (buf, scope, _, _) ->
                 if Scope.is_on_chip scope || not (List.mem scope target.Platform.scopes)
                 then
                   Some
                     (match Xpiler_passes.Memory_pass.decache ~buf st.kernel with
                     | Ok _ -> Pass.Decache { buf }
                     | Error _ -> Pass.Rescope { buf; scope = Scope.Local })
                 else None)
        in
        run fixes
    in
    if despecialize () <> Applied then finish ()
    else if st.active_faults <> [] then finish ()
    else begin
      (* phase 2: retarget via the candidate pass pipelines *)
      let base = st.kernel and base_specs = st.specs_rev and base_skipped = st.skipped_rev in
      let pipelines = Idiom.pipelines_for dst op shape st.kernel in
      let rec try_pipelines = function
        | [] -> finish ()
        | pipeline :: rest -> (
          st.kernel <- base;
          st.specs_rev <- base_specs;
          st.skipped_rev <- base_skipped;
          st.active_faults <- [];
          let rec run = function
            | [] -> finish ()
            | spec :: specs -> (
              match run_pass spec with
              | Applied -> run specs
              (* re-plan around the skipped pass: the rest of the pipeline
                 still runs against the rolled-back checkpoint *)
              | Skipped -> run specs
              | Inapplicable _ -> try_pipelines rest
              | Broken -> finish ())
          in
          run pipeline)
      in
      try_pipelines pipelines
    end)
