open Xpiler_ir
open Xpiler_machine
open Xpiler_ops
open Xpiler_neural
module Pass = Xpiler_passes.Pass
module Vclock = Xpiler_util.Vclock
module Rng = Xpiler_util.Rng
module Obs = Xpiler_obs

type status = Success | Compile_error of string | Computation_error of string

type outcome = {
  status : status;
  kernel : Kernel.t option;
  target_text : string option;
  specs_applied : Pass.spec list;
  faults_seen : Fault.injected list;
  residual_faults : Fault.injected list;
  repairs_attempted : int;
  repairs_succeeded : int;
  clock : Vclock.t;
  throughput : float option;
  trace : Obs.Event.t list;
}

let status_to_string = function
  | Success -> "success"
  | Compile_error m -> "compile error: " ^ m
  | Computation_error m -> "computation error: " ^ m

let strip_annots (k : Kernel.t) =
  let rec go block =
    List.concat_map
      (fun s ->
        match s with
        | Stmt.Annot _ -> []
        | Stmt.For r -> [ Stmt.For { r with body = go r.body } ]
        | Stmt.If r -> [ Stmt.If { r with then_ = go r.then_; else_ = go r.else_ } ]
        | s -> [ s ])
      block
  in
  Kernel.with_body k (go k.Kernel.body)

(* program size and data-dependent control flow inflate LLM fault rates —
   the paper's explanation for the Deformable Attention failure case *)
let complexity_multiplier (k : Kernel.t) =
  let stmts = Stmt.count_stmts k.Kernel.body in
  let tainted = Hashtbl.create 8 in
  let expr_tainted e =
    Expr.buffers_read e <> [] || List.exists (Hashtbl.mem tainted) (Expr.free_vars e)
  in
  let dyn_ifs = ref 0 in
  Stmt.iter
    (fun s ->
      match s with
      | Stmt.Let { var; value } | Stmt.Assign { var; value } ->
        if expr_tainted value then Hashtbl.replace tainted var ()
      | Stmt.If r -> if expr_tainted r.cond then incr dyn_ifs
      | _ -> ())
    k.Kernel.body;
  let size = Float.max 0.8 (Float.min 3.0 (sqrt (float_of_int stmts /. 12.0))) in
  let control = 1.0 +. (1.0 *. Float.min 4.0 (float_of_int !dyn_ifs)) in
  size *. control

type state = {
  mutable kernel : Kernel.t;
  mutable specs : Pass.spec list;
  mutable faults_seen : Fault.injected list;
  mutable active_faults : Fault.injected list;
  mutable repairs_attempted : int;
  mutable repairs_succeeded : int;
}

type pass_result = Applied | Inapplicable of string | Broken

let case_seed (config : Config.t) src dst (op : Opdef.t) shape =
  Hashtbl.hash
    ( config.Config.seed,
      Platform.id_to_string src,
      Platform.id_to_string dst,
      op.Opdef.name,
      shape )

let shape_to_string shape =
  String.concat "," (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) shape)

let transcompile ?(config = Config.default) ~src ~dst ~op ~shape () =
  let clock = Vclock.create () in
  (* tracing: a tracer of our own when the config asks for one, else reuse
     an ambient tracer a caller (e.g. the bench harness) installed; either
     way the Vclock observer keeps span timestamps and stage totals in
     lock-step (single source of timing truth) *)
  let prev_ambient = Obs.Trace.current () in
  let owns_tracer, tracer =
    match config.Config.trace_level with
    | Obs.Tracer.Off -> (false, prev_ambient)
    | level -> (true, Some (Obs.Tracer.create ~level ()))
  in
  let restored = ref false in
  let restore_ambient () =
    if owns_tracer && not !restored then begin
      restored := true;
      match prev_ambient with
      | Some p -> Obs.Trace.install p
      | None -> Obs.Trace.uninstall ()
    end
  in
  (match tracer with
  | Some t ->
    if owns_tracer then Obs.Trace.install t;
    Vclock.set_observer clock (fun stage s ->
        Obs.Tracer.stage_charge t (Vclock.stage_name stage) s)
  | None -> ());
  (* whatever happens below, never leak our tracer into the caller *)
  Fun.protect ~finally:restore_ambient @@ fun () ->
  let root_span =
    Option.map
      (fun t ->
        Obs.Tracer.span_begin t ~cat:"translate"
          ~attrs:
            [ ("op", op.Opdef.name);
              ("src", Platform.id_to_string src);
              ("dst", Platform.id_to_string dst);
              ("shape", shape_to_string shape);
              ("seed", string_of_int config.Config.seed);
              ("config", config.Config.name) ]
          ("translate:" ^ op.Opdef.name))
      tracer
  in
  (* seal the trace and restore the caller's tracing state *)
  let finish_trace outcome =
    (match tracer with
    | Some t ->
      Obs.Tracer.instant t
        ~attrs:[ ("status", status_to_string outcome.status) ]
        "translate.status";
      (match root_span with Some s -> Obs.Tracer.span_end t s | None -> ());
      Vclock.clear_observer clock
    | None -> ());
    restore_ambient ();
    match (owns_tracer, tracer) with
    | true, Some t ->
      let events = Obs.Tracer.events t in
      (match config.Config.trace_sink with
      | Some path -> Obs.Journal.write_file path events
      | None -> ());
      { outcome with trace = events }
    | _ -> outcome
  in
  let buffer_sizes =
    List.map (fun (b : Opdef.buffer_spec) -> (b.buf_name, b.size shape)) op.Opdef.buffers
  in
  let llm = Llm.create ~seed:(case_seed config src dst op shape) ~clock () in
  let retry_rng = Rng.create (case_seed config src dst op shape + 17) in
  let target = Platform.of_id dst in
  let src_kernel = Idiom.source src op shape in
  (* program annotation (Algorithm 1): one LLM pass + BM25 retrieval *)
  let annotated_kernel =
    if config.Config.annotate then
      Obs.Trace.span ~cat:"phase" "annotate" (fun () ->
          Vclock.charge clock Vclock.Annotation
            (150.0 +. (5.0 *. float_of_int (Stmt.count_stmts src_kernel.Kernel.body)));
          Annotate.annotate ~target:dst src_kernel)
    else src_kernel
  in
  let base_profile =
    Profile.pass_level ~annotated:config.Config.annotate
    |> (fun p -> Profile.scale p (sqrt (Profile.direction_difficulty ~src ~dst)))
    |> fun p -> Profile.scale p (complexity_multiplier src_kernel)
  in
  let st =
    { kernel = strip_annots annotated_kernel;
      specs = [];
      faults_seen = [];
      active_faults = [];
      repairs_attempted = 0;
      repairs_succeeded = 0
    }
  in
  let compile_ok k = Checker.compile target k = Ok () in
  let unit_ok k =
    Vclock.charge clock Vclock.Unit_test 45.0;
    Unit_test.check ~trials:config.Config.unit_test_trials op shape k = Unit_test.Pass
  in
  (* per-pass validation: a static pre-validation pass first (a diagnosed
     program never reaches the interpreter, and its findings seed the
     repairer's localization), then the unit test (the paper's flow).
     Platform compilation is checked once on the final program, since
     intermediate states legitimately mix source and target features *)
  let static_diags = ref [] in
  let valid k =
    static_diags := [];
    if config.Config.static_analysis then begin
      Vclock.charge clock Vclock.Static_analysis
        (2.0 +. (0.05 *. float_of_int (Stmt.count_stmts k.Kernel.body)));
      match
        Xpiler_analysis.Analyzer.errors
          (Xpiler_analysis.Analyzer.analyze ~extents:buffer_sizes k)
      with
      | [] -> unit_ok k
      | findings ->
        (* short-circuit: no interpreter run for a statically-diagnosed
           program — reading the report is orders of magnitude cheaper *)
        static_diags := findings;
        false
    end
    else unit_ok k
  in
  (* one LLM-assisted pass with validation and symbolic repair *)
  let run_pass_untraced spec =
    let prompt = Meta_prompt.build ~target:dst spec st.kernel in
    match Llm.apply_pass llm ~profile:base_profile ~target ~prompt spec st.kernel with
    | Error m -> Inapplicable m
    | Ok (k', faults) ->
      st.faults_seen <- st.faults_seen @ faults;
      st.active_faults <- st.active_faults @ faults;
      if valid k' then begin
        st.kernel <- k';
        st.specs <- st.specs @ [ spec ];
        st.active_faults <- [];
        Applied
      end
      else if config.Config.use_smt then begin
        st.repairs_attempted <- st.repairs_attempted + 1;
        match
          Xpiler_repair.Repairer.repair ~static:!static_diags ~clock ~platform:target ~op
            ~shape k'
        with
        | Xpiler_repair.Repairer.Repaired { kernel; _ } ->
          st.repairs_succeeded <- st.repairs_succeeded + 1;
          st.kernel <- kernel;
          st.specs <- st.specs @ [ spec ];
          st.active_faults <- [];
          Applied
        | Xpiler_repair.Repairer.Gave_up _ ->
          st.kernel <- k';
          st.specs <- st.specs @ [ spec ];
          Broken
      end
      else if config.Config.self_debugging then begin
        (* Self-Debugging resamples the LLM, but its errors are largely
           systematic: most retries reproduce the same faulty output *)
        if Rng.bernoulli retry_rng 0.85 then begin
          st.kernel <- k';
          st.specs <- st.specs @ [ spec ];
          Broken
        end
        else begin
          match Llm.apply_pass llm ~profile:base_profile ~target ~prompt spec st.kernel with
          | Error m -> Inapplicable m
          | Ok (k'', faults') ->
            st.faults_seen <- st.faults_seen @ faults';
            if valid k'' then begin
              st.kernel <- k'';
              st.specs <- st.specs @ [ spec ];
              st.active_faults <- [];
              Applied
            end
            else begin
              st.active_faults <- st.active_faults @ faults';
              st.kernel <- k'';
              st.specs <- st.specs @ [ spec ];
              Broken
            end
        end
      end
      else begin
        st.kernel <- k';
        st.specs <- st.specs @ [ spec ];
        Broken
      end
  in
  let run_pass spec =
    Obs.Trace.span ~cat:"pass" (Pass.describe spec) (fun () ->
        let r = run_pass_untraced spec in
        Obs.Trace.count
          (match r with
          | Applied -> "pass.applied"
          | Inapplicable _ -> "pass.inapplicable"
          | Broken -> "pass.broken");
        r)
  in
  (* phase 1: sequentialize when the source is parallel *)
  let recovery_ok =
    if Stmt.axes_used st.kernel.Kernel.body <> [] then run_pass Pass.Loop_recovery
    else Applied
  in
  let finish () =
    finish_trace
    @@ Obs.Trace.span ~cat:"phase" "finalize"
    @@ fun () ->
    let k = st.kernel in
    let status =
      if not (compile_ok k) then
        Compile_error
          (match Checker.compile target k with
          | Error (e :: _) -> Checker.error_to_string e
          | _ -> "unknown")
      else if not (unit_ok k) then
        Computation_error
          (match Unit_test.check ~trials:1 op shape k with
          | Unit_test.Fail m -> m
          | Unit_test.Pass -> "flaky")
      else Success
    in
    (* hierarchical auto-tuning on accepted translations *)
    let k, throughput =
      if status = Success && config.Config.tune then begin
        let mcts_config =
          { config.Config.mcts with Xpiler_tuning.Mcts.prune = config.Config.tuning_prune }
        in
        let db =
          if config.Config.tuning_warm_start then Some Xpiler_tuning.Schedule_db.default
          else None
        in
        let result =
          Xpiler_tuning.Mcts.search ~config:mcts_config ~clock ~buffer_sizes
            ~jobs:config.Config.jobs ?db ~platform:target k
        in
        let tuned = result.Xpiler_tuning.Mcts.best_kernel in
        if unit_ok tuned then (tuned, Some result.Xpiler_tuning.Mcts.best_reward)
        else (k, Some (Costmodel.throughput target k ~shapes:[]))
      end
      else if status = Success then (k, Some (Costmodel.throughput target k ~shapes:[]))
      else (k, None)
    in
    { status;
      kernel = Some k;
      target_text = Some (Xpiler_lang.Codegen.emit (Xpiler_lang.Dialect.of_platform dst) k);
      specs_applied = st.specs;
      faults_seen = st.faults_seen;
      residual_faults = st.active_faults;
      repairs_attempted = st.repairs_attempted;
      repairs_succeeded = st.repairs_succeeded;
      clock;
      throughput;
      trace = []
    }
  in
  match recovery_ok with
  | Broken | Inapplicable _ -> finish ()
  | Applied -> (
    (* phase 1.5: canonicalize split elementwise loops back into flat loops *)
    let rec normalize () =
      match st.kernel.Kernel.body with
      | [ Stmt.For { var; kind = Stmt.Serial;
                     body = [ Stmt.For { kind = Stmt.Serial; body = [ Stmt.Store _ ]; _ } ]; _ } ]
        -> (
        match run_pass (Pass.Loop_fuse { var }) with
        | Applied -> normalize ()
        | Inapplicable _ | Broken -> ())
      | _ -> ()
    in
    normalize ();
    (* phase 1.75: strip source-platform specialization the target lacks —
       restore loops from foreign intrinsics, move foreign memory spaces to
       plain local storage *)
    let despecialize () =
      (* source intrinsics are restored to loops even when the target has an
         equivalent: operand staging differs per platform, so the target
         pipeline re-tensorizes from scratch *)
      let detens =
        if Stmt.intrinsics st.kernel.Kernel.body <> [] then [ Pass.Detensorize ] else []
      in
      let rec run = function
        | [] -> Applied
        | spec :: rest -> (
          match run_pass spec with
          | Applied -> run rest
          | (Inapplicable _ | Broken) as r -> r)
      in
      match run detens with
      | (Inapplicable _ | Broken) as r -> r
      | Applied ->
        (* drop source-side staging (the target pipeline re-stages), falling
           back to a local-scratch rescope for genuine temporaries *)
        let fixes =
          Stmt.allocs st.kernel.Kernel.body
          |> List.filter_map (fun (buf, scope, _, _) ->
                 if Scope.is_on_chip scope || not (List.mem scope target.Platform.scopes)
                 then
                   Some
                     (match Xpiler_passes.Memory_pass.decache ~buf st.kernel with
                     | Ok _ -> Pass.Decache { buf }
                     | Error _ -> Pass.Rescope { buf; scope = Scope.Local })
                 else None)
        in
        run fixes
    in
    if despecialize () <> Applied then finish ()
    else if st.active_faults <> [] then finish ()
    else begin
      (* phase 2: retarget via the candidate pass pipelines *)
      let base = st.kernel and base_specs = st.specs in
      let pipelines = Idiom.pipelines_for dst op shape st.kernel in
      let rec try_pipelines = function
        | [] -> finish ()
        | pipeline :: rest -> (
          st.kernel <- base;
          st.specs <- base_specs;
          st.active_faults <- [];
          let rec run = function
            | [] -> finish ()
            | spec :: specs -> (
              match run_pass spec with
              | Applied -> run specs
              | Inapplicable _ -> try_pipelines rest
              | Broken -> finish ())
          in
          run pipeline)
      in
      try_pipelines pipelines
    end)
