module Pass = Xpiler_passes.Pass
module Fault = Xpiler_neural.Fault

type rung = Validate | Reprompt | Smt | Symbolic | Skip

let rung_index = function Validate -> 0 | Reprompt -> 1 | Smt -> 2 | Symbolic -> 3 | Skip -> 4

let rung_name = function
  | Validate -> "validate"
  | Reprompt -> "reprompt"
  | Smt -> "smt-repair"
  | Symbolic -> "symbolic"
  | Skip -> "skip"

type result =
  | Applied  (** valid on the first attempt *)
  | Applied_reprompt  (** a hinted re-prompt produced a valid kernel *)
  | Repaired  (** SMT repair fixed the faulty kernel *)
  | Symbolic_applied  (** rewrite-only application, no LLM in the loop *)
  | Skipped  (** rolled back to the checkpoint; pass left out of the plan *)
  | Committed_broken  (** rollback off: the invalid kernel entered the state *)
  | Not_applicable of string

let result_name = function
  | Applied -> "applied"
  | Applied_reprompt -> "applied-reprompt"
  | Repaired -> "repaired"
  | Symbolic_applied -> "symbolic"
  | Skipped -> "skipped"
  | Committed_broken -> "committed-broken"
  | Not_applicable _ -> "inapplicable"

type entry = {
  spec : Pass.spec;
  attempts : int;  (** LLM calls spent on this pass, re-prompts included *)
  rung : rung;  (** highest escalation rung reached *)
  fault_classes : Fault.category list;  (** distinct classes diagnosed, in order *)
  time_charged : float;  (** virtual-clock seconds charged during the pass *)
  result : result;
}

let escalated entries = List.filter (fun e -> rung_index e.rung > 0) entries

let classes_to_string cats =
  match cats with
  | [] -> "-"
  | cats -> String.concat "+" (List.map Fault.category_name cats)

let trace_attrs e =
  [ ("spec", Pass.describe e.spec);
    ("rung", rung_name e.rung);
    ("attempts", string_of_int e.attempts);
    ("faults", classes_to_string e.fault_classes);
    ("result", result_name e.result) ]

let report entries =
  Report.make ~title:"Pass attempt ledger"
    ~cols:[ "rung"; "attempts"; "fault classes"; "charged s"; "result" ]
    (List.map
       (fun e ->
         ( Pass.describe e.spec,
           [ Report.Text (rung_name e.rung);
             Report.Count e.attempts;
             Report.Text (classes_to_string e.fault_classes);
             Report.Num e.time_charged;
             Report.Text (result_name e.result) ] ))
       entries)
