open Xpiler_ir
open Xpiler_machine
open Xpiler_ops

(** QiMeng-Xpiler: the neural-symbolic transcompiler (the paper's primary
    contribution, Figure 3).

    Translation is a chain of LLM-assisted transformation passes. Each pass:
    meta-prompt construction (with program annotation when enabled) -> LLM
    transformation -> unit-test validation -> bug localization and SMT-based
    code repairing on failure. Pass sequences come from the per-operator
    retargeting pipelines; a hierarchical auto-tuner (intra-pass brute force
    + inter-pass MCTS) optionally optimizes the accepted translation. *)

type status =
  | Success
  | Degraded
      (** the kernel compiles and computes correctly, but one or more passes
          were skipped with rollback on the escalation ladder — a partial
          success, distinguishable from a broken end state *)
  | Compile_error of string
  | Computation_error of string

type outcome = {
  status : status;
  kernel : Kernel.t option;  (** the final translated kernel *)
  target_text : string option;  (** rendered in the target dialect *)
  specs_applied : Xpiler_passes.Pass.spec list;
  skipped_passes : Xpiler_passes.Pass.spec list;
      (** passes rolled back and planned around (nonempty iff escalation
          reached the skip rung on the surviving plan) *)
  faults_seen : Xpiler_neural.Fault.injected list;  (** everything the oracle injected *)
  residual_faults : Xpiler_neural.Fault.injected list;  (** faults alive in the result *)
  repairs_attempted : int;
  repairs_succeeded : int;
  ledger : Ledger.entry list;
      (** per-pass attempt ledger: escalation rung, fault classes, attempts
          and virtual time charged, in execution order *)
  clock : Xpiler_util.Vclock.t;  (** modelled compile-time breakdown (Figure 8) *)
  throughput : float option;  (** modelled, when translation succeeded *)
  trace : Xpiler_obs.Event.t list;
      (** the translation's trace-event stream when [Config.trace_level]
          enabled tracing for this call; [[]] when tracing is off or when
          events went to an ambient tracer installed by the caller (the
          bench harness's whole-experiment journals) *)
}

val status_to_string : status -> string

val accepted : status -> bool
(** [Success] and [Degraded]: the result compiles and computes correctly. *)

val transcompile :
  ?config:Config.t ->
  src:Platform.id ->
  dst:Platform.id ->
  op:Opdef.t ->
  shape:Opdef.shape ->
  unit ->
  outcome

val complexity_multiplier : Kernel.t -> float
(** Fault-rate multiplier from program size and data-dependent control flow
    (why Deformable Attention is the failure case, §7.6). *)
